#include "workload/binary_io.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/string_util.h"

namespace dita {

namespace {

constexpr char kMagic[4] = {'D', 'I', 'T', 'A'};
constexpr uint32_t kVersion = 1;

void AppendVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

uint64_t ZigZag(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t UnZigZag(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

/// Reads a varint from `data` advancing `pos`; false on truncation.
bool ReadVarint(const std::string& data, size_t* pos, uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < data.size() && shift < 64) {
    const uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

int64_t Quantize(double v, double precision) {
  return static_cast<int64_t>(std::llround(v / precision));
}

}  // namespace

Status WriteBinary(const Dataset& dataset, const std::string& path,
                   const BinaryIoOptions& options) {
  if (options.precision <= 0) {
    return Status::InvalidArgument("precision must be positive");
  }
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  buf.append(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  buf.append(reinterpret_cast<const char*>(&options.precision),
             sizeof(options.precision));
  AppendVarint(dataset.size(), &buf);
  for (const Trajectory& t : dataset.trajectories()) {
    AppendVarint(ZigZag(t.id()), &buf);
    AppendVarint(t.size(), &buf);
    int64_t prev_x = 0;
    int64_t prev_y = 0;
    for (const Point& p : t.points()) {
      const int64_t qx = Quantize(p.x, options.precision);
      const int64_t qy = Quantize(p.y, options.precision);
      AppendVarint(ZigZag(qx - prev_x), &buf);
      AppendVarint(ZigZag(qy - prev_y), &buf);
      prev_x = qx;
      prev_y = qy;
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (written != buf.size()) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<Dataset> ReadBinary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::string buf;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) buf.append(chunk, n);
  std::fclose(f);

  size_t pos = 0;
  if (buf.size() < sizeof(kMagic) + sizeof(kVersion) + sizeof(double) ||
      std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("not a DITA binary dataset: " + path);
  }
  pos += sizeof(kMagic);
  uint32_t version;
  std::memcpy(&version, buf.data() + pos, sizeof(version));
  pos += sizeof(version);
  if (version != kVersion) {
    return Status::NotSupported(
        StrFormat("unsupported binary version %u", version));
  }
  double precision;
  std::memcpy(&precision, buf.data() + pos, sizeof(precision));
  pos += sizeof(precision);
  if (!(precision > 0)) return Status::IOError("corrupt precision header");

  uint64_t count;
  if (!ReadVarint(buf, &pos, &count)) return Status::IOError("truncated count");
  Dataset ds;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id_zz, len;
    if (!ReadVarint(buf, &pos, &id_zz) || !ReadVarint(buf, &pos, &len)) {
      return Status::IOError("truncated trajectory header");
    }
    Trajectory t;
    t.set_id(UnZigZag(id_zz));
    t.mutable_points().reserve(len);
    int64_t qx = 0;
    int64_t qy = 0;
    for (uint64_t k = 0; k < len; ++k) {
      uint64_t dx_zz, dy_zz;
      if (!ReadVarint(buf, &pos, &dx_zz) || !ReadVarint(buf, &pos, &dy_zz)) {
        return Status::IOError("truncated point data");
      }
      qx += UnZigZag(dx_zz);
      qy += UnZigZag(dy_zz);
      t.mutable_points().push_back(
          Point{double(qx) * precision, double(qy) * precision});
    }
    ds.Add(std::move(t));
  }
  if (pos != buf.size()) return Status::IOError("trailing bytes in " + path);
  return ds;
}

}  // namespace dita
