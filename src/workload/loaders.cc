#include "workload/loaders.h"

#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace dita {

namespace {

/// Reads all lines of a text file.
Result<std::vector<std::string>> ReadLines(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  std::vector<std::string> lines;
  char buf[1 << 14];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    lines.push_back(StrTrim(buf));
  }
  std::fclose(f);
  return lines;
}

/// Strict double parse; false if the field is not fully numeric.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

Result<Trajectory> LoadGeoLifePlt(const std::string& path, TrajectoryId id) {
  auto lines = ReadLines(path);
  DITA_RETURN_IF_ERROR(lines.status());
  if (lines->size() < 7) {
    return Status::IOError("not a GeoLife .plt file (too short): " + path);
  }
  Trajectory t;
  t.set_id(id);
  // Six header lines, then data rows: lat,lon,0,alt,days,date,time.
  for (size_t i = 6; i < lines->size(); ++i) {
    const std::string& line = (*lines)[i];
    if (line.empty()) continue;
    const auto fields = StrSplit(line, ',');
    if (fields.size() < 2) {
      return Status::IOError(
          StrFormat("malformed .plt row %zu in %s", i + 1, path.c_str()));
    }
    double lat, lon;
    if (!ParseDouble(StrTrim(fields[0]), &lat) ||
        !ParseDouble(StrTrim(fields[1]), &lon)) {
      return Status::IOError(
          StrFormat("non-numeric coordinates at row %zu in %s", i + 1,
                    path.c_str()));
    }
    t.mutable_points().push_back(Point{lon, lat});
  }
  if (t.size() < 2) {
    return Status::IOError("fewer than 2 points in " + path);
  }
  return t;
}

Result<Dataset> LoadTDriveFile(const std::string& path, TrajectoryId first_id,
                               size_t max_points) {
  auto lines = ReadLines(path);
  DITA_RETURN_IF_ERROR(lines.status());
  Dataset ds;
  Trajectory current;
  TrajectoryId next_id = first_id;
  auto flush = [&]() {
    if (current.size() >= 2) {
      current.set_id(next_id++);
      ds.Add(std::move(current));
    }
    current = Trajectory();
  };
  for (size_t i = 0; i < lines->size(); ++i) {
    const std::string& line = (*lines)[i];
    if (line.empty()) continue;
    const auto fields = StrSplit(line, ',');
    if (fields.size() != 4) {
      return Status::IOError(
          StrFormat("malformed T-Drive row %zu in %s", i + 1, path.c_str()));
    }
    double lon, lat;
    if (!ParseDouble(StrTrim(fields[2]), &lon) ||
        !ParseDouble(StrTrim(fields[3]), &lat)) {
      return Status::IOError(
          StrFormat("non-numeric coordinates at row %zu in %s", i + 1,
                    path.c_str()));
    }
    current.mutable_points().push_back(Point{lon, lat});
    if (max_points > 0 && current.size() >= max_points) flush();
  }
  flush();
  if (ds.empty()) return Status::IOError("no usable fixes in " + path);
  return ds;
}

}  // namespace dita
