#ifndef DITA_GEOM_TRAJECTORY_H_
#define DITA_GEOM_TRAJECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/mbr.h"
#include "geom/point.h"

namespace dita {

using TrajectoryId = int64_t;

/// A trajectory: an id plus a sequence of 2-d points (Definition 2.1).
class Trajectory {
 public:
  Trajectory() = default;
  Trajectory(TrajectoryId id, std::vector<Point> points)
      : id_(id), points_(std::move(points)) {}

  TrajectoryId id() const { return id_; }
  void set_id(TrajectoryId id) { id_ = id; }

  const std::vector<Point>& points() const { return points_; }
  std::vector<Point>& mutable_points() { return points_; }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const Point& operator[](size_t i) const { return points_[i]; }
  const Point& front() const { return points_.front(); }
  const Point& back() const { return points_.back(); }

  /// Minimum bounding rectangle of every point (computed on demand).
  MBR ComputeMBR() const;

  /// Approximate in-memory/on-wire size in bytes; used by the cluster
  /// simulator to charge network transmission for shipped trajectories.
  size_t ByteSize() const { return sizeof(TrajectoryId) + points_.size() * sizeof(Point); }

  std::string DebugString() const;

 private:
  TrajectoryId id_ = -1;
  std::vector<Point> points_;
};

}  // namespace dita

#endif  // DITA_GEOM_TRAJECTORY_H_
