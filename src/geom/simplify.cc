#include "geom/simplify.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dita {

double SegmentDistance(const Point& p, const Point& a, const Point& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  if (len2 == 0.0) return PointDistance(p, a);
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return PointDistance(p, Point{a.x + t * abx, a.y + t * aby});
}

namespace {

void DouglasPeuckerRecurse(const std::vector<Point>& pts, size_t lo, size_t hi,
                           double tolerance, std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  double worst = -1.0;
  size_t worst_idx = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double d = SegmentDistance(pts[i], pts[lo], pts[hi]);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst > tolerance) {
    (*keep)[worst_idx] = true;
    DouglasPeuckerRecurse(pts, lo, worst_idx, tolerance, keep);
    DouglasPeuckerRecurse(pts, worst_idx, hi, tolerance, keep);
  }
}

}  // namespace

Trajectory SimplifyDouglasPeucker(const Trajectory& t, double tolerance) {
  const auto& pts = t.points();
  if (pts.size() <= 2) return t;
  std::vector<bool> keep(pts.size(), false);
  keep.front() = keep.back() = true;
  DouglasPeuckerRecurse(pts, 0, pts.size() - 1, tolerance, &keep);
  Trajectory out;
  out.set_id(t.id());
  for (size_t i = 0; i < pts.size(); ++i) {
    if (keep[i]) out.mutable_points().push_back(pts[i]);
  }
  return out;
}

Trajectory DownsampleUniform(const Trajectory& t, size_t max_points) {
  const auto& pts = t.points();
  if (max_points < 2) max_points = 2;
  if (pts.size() <= max_points) return t;
  Trajectory out;
  out.set_id(t.id());
  out.mutable_points().reserve(max_points);
  for (size_t k = 0; k < max_points; ++k) {
    const size_t idx = k * (pts.size() - 1) / (max_points - 1);
    out.mutable_points().push_back(pts[idx]);
  }
  return out;
}

}  // namespace dita
