#ifndef DITA_GEOM_POINT_H_
#define DITA_GEOM_POINT_H_

#include <cmath>

namespace dita {

/// A 2-dimensional point. The paper represents each trajectory point as a
/// (latitude, longitude) tuple; we store them as (x, y) doubles. Extension to
/// d >= 3 is orthogonal to the algorithms (the paper, §2.1).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points (the paper's point-to-point dist).
inline double PointDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance; avoids the sqrt on hot filter paths.
inline double PointDistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace dita

#endif  // DITA_GEOM_POINT_H_
