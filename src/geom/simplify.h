#ifndef DITA_GEOM_SIMPLIFY_H_
#define DITA_GEOM_SIMPLIFY_H_

#include "geom/trajectory.h"

namespace dita {

/// Trajectory simplification (the preprocessing family of [28-30]): reduce
/// point counts before indexing while bounding the spatial error. Both
/// functions keep the first and last point (DITA's alignment anchors).

/// Douglas-Peucker: drops points whose perpendicular deviation from the
/// kept polyline is at most `tolerance`. Guarantees every dropped point
/// lies within `tolerance` of the simplified curve.
Trajectory SimplifyDouglasPeucker(const Trajectory& t, double tolerance);

/// Uniform downsampling to at most `max_points` points (>= 2), keeping the
/// endpoints and evenly spaced interior points.
Trajectory DownsampleUniform(const Trajectory& t, size_t max_points);

/// Perpendicular distance from `p` to the segment (a, b); falls back to the
/// distance to the nearer endpoint for degenerate segments.
double SegmentDistance(const Point& p, const Point& a, const Point& b);

}  // namespace dita

#endif  // DITA_GEOM_SIMPLIFY_H_
