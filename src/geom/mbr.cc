#include "geom/mbr.h"

#include <cmath>

#include "util/string_util.h"

namespace dita {

void MBR::Expand(const Point& p) {
  lo_.x = std::min(lo_.x, p.x);
  lo_.y = std::min(lo_.y, p.y);
  hi_.x = std::max(hi_.x, p.x);
  hi_.y = std::max(hi_.y, p.y);
  empty_ = false;
}

void MBR::Expand(const MBR& other) {
  if (other.empty_) return;
  Expand(other.lo_);
  Expand(other.hi_);
}

MBR MBR::Extended(double delta) const {
  if (empty_) return MBR();
  return MBR(Point{lo_.x - delta, lo_.y - delta},
             Point{hi_.x + delta, hi_.y + delta});
}

bool MBR::Contains(const Point& p) const {
  if (empty_) return false;
  return p.x >= lo_.x && p.x <= hi_.x && p.y >= lo_.y && p.y <= hi_.y;
}

bool MBR::Covers(const MBR& other) const {
  if (empty_ || other.empty_) return false;
  return other.lo_.x >= lo_.x && other.hi_.x <= hi_.x && other.lo_.y >= lo_.y &&
         other.hi_.y <= hi_.y;
}

bool MBR::Intersects(const MBR& other) const {
  if (empty_ || other.empty_) return false;
  return !(other.lo_.x > hi_.x || other.hi_.x < lo_.x || other.lo_.y > hi_.y ||
           other.hi_.y < lo_.y);
}

double MBR::MinDist(const Point& p) const {
  if (empty_) return std::numeric_limits<double>::infinity();
  const double dx = std::max({lo_.x - p.x, 0.0, p.x - hi_.x});
  const double dy = std::max({lo_.y - p.y, 0.0, p.y - hi_.y});
  return std::sqrt(dx * dx + dy * dy);
}

double MBR::MinDist(const MBR& other) const {
  if (empty_ || other.empty_) return std::numeric_limits<double>::infinity();
  const double dx = std::max({lo_.x - other.hi_.x, 0.0, other.lo_.x - hi_.x});
  const double dy = std::max({lo_.y - other.hi_.y, 0.0, other.lo_.y - hi_.y});
  return std::sqrt(dx * dx + dy * dy);
}

double MBR::MaxDist(const Point& p) const {
  if (empty_) return std::numeric_limits<double>::infinity();
  const double dx = std::max(std::abs(p.x - lo_.x), std::abs(p.x - hi_.x));
  const double dy = std::max(std::abs(p.y - lo_.y), std::abs(p.y - hi_.y));
  return std::sqrt(dx * dx + dy * dy);
}

double MBR::Area() const {
  if (empty_) return 0.0;
  return (hi_.x - lo_.x) * (hi_.y - lo_.y);
}

std::string MBR::DebugString() const {
  if (empty_) return "[empty]";
  return StrFormat("[(%g,%g),(%g,%g)]", lo_.x, lo_.y, hi_.x, hi_.y);
}

}  // namespace dita
