#include "geom/trajectory.h"

#include "util/string_util.h"

namespace dita {

MBR Trajectory::ComputeMBR() const {
  MBR mbr;
  for (const Point& p : points_) mbr.Expand(p);
  return mbr;
}

std::string Trajectory::DebugString() const {
  std::string out = StrFormat("T%lld[", static_cast<long long>(id_));
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("(%g,%g)", points_[i].x, points_[i].y);
  }
  out += "]";
  return out;
}

}  // namespace dita
