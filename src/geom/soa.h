#ifndef DITA_GEOM_SOA_H_
#define DITA_GEOM_SOA_H_

#include <cstddef>
#include <vector>

#include "geom/trajectory.h"

namespace dita {

/// Non-owning structure-of-arrays view of a trajectory's coordinates. The
/// distance kernels iterate xs/ys as contiguous lanes, so their row-distance
/// passes are unit-stride scans the compiler can vectorize instead of
/// strided gathers over Point structs.
struct TrajView {
  const double* xs = nullptr;
  const double* ys = nullptr;
  size_t len = 0;

  bool empty() const { return len == 0; }
};

/// Owning SoA copy of a trajectory's coordinates. Extracted once per indexed
/// trajectory (into VerifyPrecomp, at index-build time) so verification never
/// re-walks the Point array; ad-hoc callers extract into DpScratch lanes
/// instead.
class SoaTrajectory {
 public:
  SoaTrajectory() = default;
  explicit SoaTrajectory(const Trajectory& t) { Assign(t); }

  void Assign(const Trajectory& t) {
    const auto& pts = t.points();
    xs_.resize(pts.size());
    ys_.resize(pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
      xs_[i] = pts[i].x;
      ys_[i] = pts[i].y;
    }
  }

  TrajView view() const { return TrajView{xs_.data(), ys_.data(), xs_.size()}; }
  size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  /// Heap bytes held by the two coordinate lanes; counted into
  /// IndexStats::local_index_bytes so index-size reporting stays honest.
  size_t ByteSize() const {
    return (xs_.capacity() + ys_.capacity()) * sizeof(double);
  }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace dita

#endif  // DITA_GEOM_SOA_H_
