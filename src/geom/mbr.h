#ifndef DITA_GEOM_MBR_H_
#define DITA_GEOM_MBR_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geom/point.h"

namespace dita {

/// Minimum bounding rectangle. Default-constructed MBRs are empty and can be
/// grown with Expand(); empty MBRs report infinite MinDist.
class MBR {
 public:
  MBR() = default;
  MBR(const Point& lo, const Point& hi) : lo_(lo), hi_(hi), empty_(false) {}

  /// MBR covering a single point.
  static MBR FromPoint(const Point& p) { return MBR(p, p); }

  bool empty() const { return empty_; }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  /// Grows to cover `p`.
  void Expand(const Point& p);

  /// Grows to cover `other` entirely.
  void Expand(const MBR& other);

  /// Returns a copy with every border pushed outward by `delta` (the paper's
  /// EMBR_{Q,tau} used by MBR coverage filtering, Lemma 5.4).
  MBR Extended(double delta) const;

  /// True iff `p` lies inside (borders inclusive).
  bool Contains(const Point& p) const;

  /// True iff `other` lies entirely inside this rectangle.
  bool Covers(const MBR& other) const;

  /// True iff the two rectangles overlap (borders inclusive).
  bool Intersects(const MBR& other) const;

  /// Minimal Euclidean distance from `p` to this rectangle; 0 if inside.
  double MinDist(const Point& p) const;

  /// Minimal Euclidean distance between two rectangles; 0 if they intersect.
  double MinDist(const MBR& other) const;

  /// Maximal Euclidean distance from `p` to any point of this rectangle.
  /// Used for upper-bound reasoning in tests.
  double MaxDist(const Point& p) const;

  double Area() const;

  /// Center point; undefined for empty MBRs.
  Point Center() const { return Point{(lo_.x + hi_.x) / 2, (lo_.y + hi_.y) / 2}; }

  std::string DebugString() const;

  friend bool operator==(const MBR& a, const MBR& b) {
    if (a.empty_ != b.empty_) return false;
    if (a.empty_) return true;
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  Point lo_{std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  Point hi_{-std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};
  bool empty_ = true;
};

}  // namespace dita

#endif  // DITA_GEOM_MBR_H_
