#ifndef DITA_OBS_FUNNEL_H_
#define DITA_OBS_FUNNEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dita::obs {

/// Survivor counts through the paper's pruning pipeline, one level per
/// filter: global index (§5.2) → trie levels (Lemma 5.1 suffix bound) →
/// MBR/EMBR coverage (Lemma 5.4) → cell lower bound (Lemma 5.6) → threshold
/// DP. Each level records how many units (trajectories for a search, pairs
/// for a join) survive *after* that filter ran, so a well-formed funnel is
/// monotonically non-increasing and its last level equals the number of
/// results.
struct FilterFunnel {
  struct Level {
    std::string label;
    uint64_t survivors = 0;

    friend bool operator==(const Level&, const Level&) = default;
  };

  std::vector<Level> levels;

  void AddLevel(std::string label, uint64_t survivors) {
    levels.push_back(Level{std::move(label), survivors});
  }

  bool empty() const { return levels.empty(); }

  /// True iff every level's survivor count is <= its predecessor's. An
  /// empty funnel is trivially monotonic.
  bool MonotonicallyNonIncreasing() const;

  /// Survivors of the last level (the final answer count); 0 when empty.
  uint64_t FinalSurvivors() const {
    return levels.empty() ? 0 : levels.back().survivors;
  }

  /// Human-readable table: one row per level with the survivor count, the
  /// fraction of the first level still alive, and the per-level selectivity.
  std::string ToTable() const;

  /// Flat JSON array of {"label": ..., "survivors": ...} objects.
  std::string ToJson() const;
};

}  // namespace dita::obs

#endif  // DITA_OBS_FUNNEL_H_
