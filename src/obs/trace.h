#ifndef DITA_OBS_TRACE_H_
#define DITA_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dita::obs {

/// Logical lanes — the "threads" of the exported Chrome trace. Lane 0 is
/// the driver; worker w gets lane w + 1. Lanes describe where work is
/// *charged* in the cluster's cost model, not which OS thread ran it.
inline constexpr int64_t kDriverLane = 0;
inline int64_t WorkerLane(size_t worker) {
  return static_cast<int64_t>(worker) + 1;
}

/// Serving-plane lanes sit at negative ids so they can never collide with
/// worker lanes: the background epoch-merge thread, the answer cache, and
/// the DitaService executor pool (one lane per executor thread).
inline constexpr int64_t kMergeLane = -1;
inline constexpr int64_t kCacheLane = -2;
inline int64_t ServingExecutorLane(size_t executor) {
  return -3 - static_cast<int64_t>(executor);
}

/// Records nested spans on a deterministic virtual clock.
///
/// Timestamps are logical ticks: every span begin/end consumes one tick
/// from a process-order counter. Under the cluster's serial execution mode
/// (ClusterConfig::execution_threads == 0, the default) tick assignment
/// depends only on the sequence of operations — never on measured time —
/// so two runs with the same seeds and fault plan export byte-identical
/// traces. Measured seconds live in metrics and stats, deliberately outside
/// the trace. With real execution threads, spans remain well-formed and
/// race-free (every mutation is mutex-guarded) but interleaving, and hence
/// tick order, follows the actual schedule.
///
/// Span nesting is by tick containment per lane, matching the Chrome
/// trace_event model: a span opened while another is open on the same lane
/// closes before it (RAII SpanGuard enforces this).
class Tracer {
 public:
  /// Opens a span on the current thread's lane (driver unless a ScopedLane
  /// is active). Returns the span id to close with EndSpan.
  uint64_t BeginSpan(std::string name);
  uint64_t BeginSpan(std::string name, int64_t lane);
  void EndSpan(uint64_t id);

  /// Attaches a deterministic integer argument to an open or closed span.
  /// Only counts and ids belong here: measured durations would break trace
  /// reproducibility.
  void AddArg(uint64_t id, const char* key, uint64_t value);

  /// Zero-duration marker event on the current (or given) lane.
  void Instant(std::string name);
  void Instant(std::string name, int64_t lane);

  struct Event {
    std::string name;
    int64_t lane = kDriverLane;
    uint64_t begin = 0;
    uint64_t end = 0;  // == begin for instants; >= begin once closed
    bool closed = false;
    std::vector<std::pair<std::string, uint64_t>> args;
  };

  /// Snapshot of all events in creation (= begin-tick) order.
  std::vector<Event> Events() const;
  size_t span_count() const;

  /// Drops all recorded events and restarts the tick clock.
  void Clear();

  /// RAII override of the calling thread's lane; the cluster wraps each
  /// task body in one so nested spans land on the owning worker's lane.
  /// Null-safe: pass the tracer only to keep call sites uniform.
  class ScopedLane {
   public:
    explicit ScopedLane(int64_t lane);
    ~ScopedLane();
    ScopedLane(const ScopedLane&) = delete;
    ScopedLane& operator=(const ScopedLane&) = delete;

   private:
    int64_t saved_;
  };

  /// The calling thread's current lane (driver by default).
  static int64_t CurrentLane();

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  uint64_t next_tick_ = 0;
};

/// RAII span whose disabled path (`tracer == nullptr`) is a single branch.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, std::string name) : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(std::move(name));
  }
  SpanGuard(Tracer* tracer, std::string name, int64_t lane) : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(std::move(name), lane);
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attaches a deterministic integer argument to this span.
  void Arg(const char* key, uint64_t value) {
    if (tracer_ != nullptr) tracer_->AddArg(id_, key, value);
  }

 private:
  Tracer* tracer_;
  uint64_t id_ = 0;
};

}  // namespace dita::obs

#endif  // DITA_OBS_TRACE_H_
