#ifndef DITA_OBS_METRICS_H_
#define DITA_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dita::obs {

/// Index of the calling thread into the per-metric shard arrays. Assigned
/// once per thread, round-robin, so long-lived pool threads spread across
/// shards instead of hashing onto the same slot.
uint32_t ThreadShardIndex();

/// Shards per metric. Power of two; increments hit
/// shards[thread & (kMetricShards - 1)], so threads only contend when more
/// than kMetricShards of them update one metric at once — and even then the
/// update is a relaxed atomic add, never a lock.
inline constexpr uint32_t kMetricShards = 16;

/// Monotonic counter, sharded per thread. Add() is lock-free and
/// allocation-free: one relaxed fetch_add on a cache-line-private atomic.
class Counter {
 public:
  void Add(uint64_t n) {
    shards_[ThreadShardIndex() & (kMetricShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all shards. Concurrent increments may or may not be included;
  /// the value is exact once writers are quiescent.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (e.g. live workers, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-bucketed mergeable histogram (the HdrHistogram idiom).
///
/// Buckets are log-linear: each power of two between `min` and `max` is
/// split into 2^sub_bucket_bits equal sub-buckets, so the relative width of
/// any bucket is at most 2^-sub_bucket_bits and a quantile read off the
/// bucket boundaries is within that relative error of the true sample
/// quantile — with *exact* lower/upper bounds, not an interpolated guess.
///
/// The bucket index is computed from the IEEE-754 bit pattern: for a
/// positive double, `bits >> (52 - k)` concatenates the exponent with the
/// top k mantissa bits, which is exactly the log-linear bucket number, and
/// every bucket boundary is reconstructible bit-exactly by shifting back.
/// No loops, no branches on magnitude, no floating-point log.
///
/// Observe() is lock-free and allocation-free: per-thread shards (like
/// Counter) with one relaxed fetch_add each on the bucket and the sum.
/// Snapshots from histograms with identical Options merge losslessly
/// (bucket-wise add), which is what makes per-shard / per-process series
/// aggregatable without precision loss.
class Histogram {
 public:
  struct Options {
    /// Lowest trackable value. Values below `min` (and <= 0, and NaN) land
    /// in the dedicated underflow bucket 0. Rounded down to a bucket
    /// boundary at construction.
    double min = 1e-9;
    /// Values >= `max` (rounded down to a bucket boundary) land in the
    /// dedicated overflow bucket.
    double max = 1e9;
    /// Sub-buckets per power of two = 2^sub_bucket_bits. Bounds quantile
    /// relative error: 4 -> 6.25%, 2 -> 25%. Clamped to [0, 8].
    int sub_bucket_bits = 3;

    bool operator==(const Options& o) const {
      return min == o.min && max == o.max &&
             sub_bucket_bits == o.sub_bucket_bits;
    }
  };

  // A default *argument* cannot construct Options here — its default member
  // initializers are not parsed until the end of Histogram (GCC enforces
  // this; PR c++/88165) — but a delegating body can: inline bodies are
  // parsed in complete-class context, after the initializers.
  Histogram() : Histogram(Options()) {}
  explicit Histogram(Options opts);

  void Observe(double x) {
    Shard& s = shards_[ThreadShardIndex() & (kMetricShards - 1)];
    s.counts[BucketIndex(x)].fetch_add(1, std::memory_order_relaxed);
    // Sum kept as an integer total of quantized values would lose precision;
    // C++20 atomic<double> fetch_add keeps it exact-ish and lock-free.
    s.sum.fetch_add(x, std::memory_order_relaxed);
  }

  /// Bucket index for a value: 0 = underflow, bucket_count()-1 = overflow.
  size_t BucketIndex(double x) const {
    if (!(x > 0.0)) return 0;  // also catches NaN
    const uint64_t raw = std::bit_cast<uint64_t>(x) >> shift_;
    if (raw < raw_min_) return 0;
    if (raw >= raw_max_) return bucket_count_ - 1;
    return static_cast<size_t>(raw - raw_min_) + 1;
  }

  struct Snapshot {
    Options options;
    std::vector<uint64_t> counts;  // dense, bucket_count entries
    uint64_t count = 0;
    double sum = 0.0;

    /// Exact bucket boundaries. Bucket i covers [lower, upper); bucket 0's
    /// lower bound is 0 and the overflow bucket's upper bound is +inf.
    double BucketLowerBound(size_t i) const;
    double BucketUpperBound(size_t i) const;

    /// The true q-quantile of the observed samples lies in
    /// [QuantileLowerBound(q), QuantileUpperBound(q)] — the exact
    /// boundaries of the bucket holding the rank-ceil(q*count) sample.
    /// Returns 0 when the histogram is empty.
    double QuantileLowerBound(double q) const;
    double QuantileUpperBound(double q) const;

    /// Bucket-wise merge. Requires identical Options; returns false (and
    /// leaves *this untouched) on a shape mismatch.
    bool MergeFrom(const Snapshot& other);
  };
  Snapshot Snap() const;

  const Options& options() const { return opts_; }
  size_t bucket_count() const { return bucket_count_; }

 private:
  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };
  Options opts_;          // normalized: min/max rounded to bucket boundaries
  int shift_ = 49;        // 52 - sub_bucket_bits
  uint64_t raw_min_ = 0;  // bit_cast(min) >> shift_
  uint64_t raw_max_ = 0;  // bit_cast(max) >> shift_
  size_t bucket_count_ = 0;
  Shard shards_[kMetricShards];
};

/// Bucketing shape for latency-in-seconds series: 100ns .. 10^4 s at 6.25%
/// bounds error. All latency histograms share it so snapshots merge.
Histogram::Options LatencyOptions();

/// Bucketing shape for count-valued series (candidates per query, batch
/// sizes, queue depths): 1 .. 2^30 at 25% bounds error.
Histogram::Options CountOptions();

/// Registry of named metrics. Metric *creation* takes a mutex (cold path,
/// once per name); the returned pointers are stable for the registry's
/// lifetime, so hot paths cache them and update lock-free. Snapshots are
/// ordered by name, giving deterministic exports.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Returns the histogram for `name`, creating it with `opts` on first
  /// use. Later calls ignore `opts` (the first registration wins).
  Histogram* GetHistogram(std::string_view name,
                          Histogram::Options opts = Histogram::Options());

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  Snapshot Snap() const;

  /// Number of distinct metrics registered. Steady-state hot loops must not
  /// grow this (see ObsTest.SteadyStateIncrementsDoNotAllocate).
  size_t metric_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Null-safe handles: the disabled path (`registry == nullptr`) costs one
/// predictable branch per update and touches no memory. Hot kernels hold
/// these by value.
class CounterHandle {
 public:
  CounterHandle() = default;
  CounterHandle(MetricsRegistry* reg, std::string_view name)
      : c_(reg == nullptr ? nullptr : reg->GetCounter(name)) {}
  /// const: updating the pointed-to counter doesn't mutate the handle, so
  /// const engine methods can hold handles by value and still count.
  void Add(uint64_t n) const {
    if (c_ != nullptr) c_->Add(n);
  }
  void Increment() const { Add(1); }
  explicit operator bool() const { return c_ != nullptr; }

 private:
  Counter* c_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  GaugeHandle(MetricsRegistry* reg, std::string_view name)
      : g_(reg == nullptr ? nullptr : reg->GetGauge(name)) {}
  void Set(int64_t v) const {
    if (g_ != nullptr) g_->Set(v);
  }
  void Add(int64_t d) const {
    if (g_ != nullptr) g_->Add(d);
  }
  explicit operator bool() const { return g_ != nullptr; }

 private:
  Gauge* g_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  HistogramHandle(MetricsRegistry* reg, std::string_view name,
                  Histogram::Options opts = Histogram::Options())
      : h_(reg == nullptr ? nullptr : reg->GetHistogram(name, opts)) {}
  void Observe(double x) const {
    if (h_ != nullptr) h_->Observe(x);
  }
  explicit operator bool() const { return h_ != nullptr; }

 private:
  Histogram* h_ = nullptr;
};

}  // namespace dita::obs

#endif  // DITA_OBS_METRICS_H_
