#ifndef DITA_OBS_METRICS_H_
#define DITA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dita::obs {

/// Index of the calling thread into the per-metric shard arrays. Assigned
/// once per thread, round-robin, so long-lived pool threads spread across
/// shards instead of hashing onto the same slot.
uint32_t ThreadShardIndex();

/// Shards per metric. Power of two; increments hit
/// shards[thread & (kMetricShards - 1)], so threads only contend when more
/// than kMetricShards of them update one metric at once — and even then the
/// update is a relaxed atomic add, never a lock.
inline constexpr uint32_t kMetricShards = 16;

/// Monotonic counter, sharded per thread. Add() is lock-free and
/// allocation-free: one relaxed fetch_add on a cache-line-private atomic.
class Counter {
 public:
  void Add(uint64_t n) {
    shards_[ThreadShardIndex() & (kMetricShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all shards. Concurrent increments may or may not be included;
  /// the value is exact once writers are quiescent.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (e.g. live workers, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket histogram, sharded per thread like Counter. Bucket bounds
/// are upper bounds; an implicit +inf bucket catches the overflow. Observe()
/// is lock-free and allocation-free.
class Histogram {
 public:
  /// `bounds` must be sorted ascending; it is fixed for the histogram's
  /// lifetime (re-registering a name with different bounds keeps the first).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double x) {
    size_t b = 0;
    while (b < bounds_.size() && x > bounds_[b]) ++b;
    Shard& s = shards_[ThreadShardIndex() & (kMetricShards - 1)];
    s.counts[b].fetch_add(1, std::memory_order_relaxed);
    // Sum kept as an integer total of quantized values would lose precision;
    // C++20 atomic<double> fetch_add keeps it exact-ish and lock-free.
    s.sum.fetch_add(x, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::vector<double> bounds;   // upper bounds; counts has one extra bucket
    std::vector<uint64_t> counts; // bounds.size() + 1 entries
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot Snap() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  Shard shards_[kMetricShards];
};

/// Registry of named metrics. Metric *creation* takes a mutex (cold path,
/// once per name); the returned pointers are stable for the registry's
/// lifetime, so hot paths cache them and update lock-free. Snapshots are
/// ordered by name, giving deterministic exports.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Returns the histogram for `name`, creating it with `bounds` on first
  /// use. Later calls ignore `bounds` (the first registration wins).
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  Snapshot Snap() const;

  /// Number of distinct metrics registered. Steady-state hot loops must not
  /// grow this (see ObsTest.SteadyStateIncrementsDoNotAllocate).
  size_t metric_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Null-safe handles: the disabled path (`registry == nullptr`) costs one
/// predictable branch per update and touches no memory. Hot kernels hold
/// these by value.
class CounterHandle {
 public:
  CounterHandle() = default;
  CounterHandle(MetricsRegistry* reg, std::string_view name)
      : c_(reg == nullptr ? nullptr : reg->GetCounter(name)) {}
  /// const: updating the pointed-to counter doesn't mutate the handle, so
  /// const engine methods can hold handles by value and still count.
  void Add(uint64_t n) const {
    if (c_ != nullptr) c_->Add(n);
  }
  void Increment() const { Add(1); }
  explicit operator bool() const { return c_ != nullptr; }

 private:
  Counter* c_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  HistogramHandle(MetricsRegistry* reg, std::string_view name,
                  std::vector<double> bounds)
      : h_(reg == nullptr ? nullptr
                          : reg->GetHistogram(name, std::move(bounds))) {}
  void Observe(double x) const {
    if (h_ != nullptr) h_->Observe(x);
  }
  explicit operator bool() const { return h_ != nullptr; }

 private:
  Histogram* h_ = nullptr;
};

/// Power-of-two bucket bounds 1, 2, 4, ... 2^(n-1): the default shape for
/// count-valued histograms (candidates per query, survivors per batch).
std::vector<double> PowersOfTwoBounds(size_t n);

/// Evenly spaced bounds start, start+step, ... — for histograms over small
/// bounded ranges (e.g. coalesced batch sizes) where power-of-two buckets
/// would lump everything interesting into one or two cells.
std::vector<double> LinearBounds(double start, double step, size_t n);

}  // namespace dita::obs

#endif  // DITA_OBS_METRICS_H_
