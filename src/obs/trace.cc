#include "obs/trace.h"

namespace dita::obs {

namespace {
thread_local int64_t t_current_lane = kDriverLane;
}  // namespace

Tracer::ScopedLane::ScopedLane(int64_t lane) : saved_(t_current_lane) {
  t_current_lane = lane;
}

Tracer::ScopedLane::~ScopedLane() { t_current_lane = saved_; }

int64_t Tracer::CurrentLane() { return t_current_lane; }

uint64_t Tracer::BeginSpan(std::string name) {
  return BeginSpan(std::move(name), t_current_lane);
}

uint64_t Tracer::BeginSpan(std::string name, int64_t lane) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = events_.size();
  Event e;
  e.name = std::move(name);
  e.lane = lane;
  e.begin = next_tick_++;
  e.end = e.begin;
  events_.push_back(std::move(e));
  return id;
}

void Tracer::EndSpan(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= events_.size() || events_[id].closed) return;
  events_[id].end = next_tick_++;
  events_[id].closed = true;
}

void Tracer::AddArg(uint64_t id, const char* key, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= events_.size()) return;
  events_[id].args.emplace_back(key, value);
}

void Tracer::Instant(std::string name) { Instant(std::move(name), t_current_lane); }

void Tracer::Instant(std::string name, int64_t lane) {
  std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = std::move(name);
  e.lane = lane;
  e.begin = next_tick_++;
  e.end = e.begin;
  e.closed = true;
  events_.push_back(std::move(e));
}

std::vector<Tracer::Event> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_tick_ = 0;
}

}  // namespace dita::obs
