#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dita::obs {

void JsonWriter::UInt(uint64_t v) {
  Sep();
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, static_cast<size_t>(end - buf));
}

void JsonWriter::Int(int64_t v) {
  Sep();
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, static_cast<size_t>(end - buf));
}

void JsonWriter::Double(double v) {
  Sep();
  char buf[40];
  // to_chars emits the shortest representation that round-trips, so equal
  // values serialize identically across runs and platforms with IEEE754.
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, static_cast<size_t>(end - buf));
}

void JsonWriter::AppendString(std::string_view v) {
  out_ += '"';
  for (char c : v) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

std::string ToChromeTraceJson(const Tracer& tracer) {
  const std::vector<Tracer::Event> events = tracer.Events();

  // Distinct lanes, ascending, for the thread_name metadata records.
  std::vector<int64_t> lanes;
  for (const auto& e : events) {
    bool seen = false;
    for (int64_t l : lanes) seen = seen || l == e.lane;
    if (!seen) lanes.push_back(e.lane);
  }
  std::sort(lanes.begin(), lanes.end());

  std::string out = "{\"traceEvents\": [\n";
  JsonWriter meta;
  meta.BeginObject();
  meta.Key("name");
  meta.String("process_name");
  meta.Key("ph");
  meta.String("M");
  meta.Key("pid");
  meta.UInt(0);
  meta.Key("tid");
  meta.UInt(0);
  meta.Key("args");
  meta.BeginObject();
  meta.Key("name");
  meta.String("dita");
  meta.EndObject();
  meta.EndObject();
  out += meta.Take();
  for (int64_t lane : lanes) {
    JsonWriter w;
    w.BeginObject();
    w.Key("name");
    w.String("thread_name");
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.UInt(0);
    w.Key("tid");
    w.Int(lane);
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    if (lane == kDriverLane) {
      w.String("driver");
    } else if (lane == kMergeLane) {
      w.String("serving.merge");
    } else if (lane == kCacheLane) {
      w.String("serving.cache");
    } else if (lane < kCacheLane) {
      w.String("serving.exec " + std::to_string(-3 - lane));
    } else {
      w.String("worker " + std::to_string(lane - 1));
    }
    w.EndObject();
    w.EndObject();
    out += ",\n" + w.Take();
  }

  for (const auto& e : events) {
    JsonWriter w;
    w.BeginObject();
    w.Key("name");
    w.String(e.name);
    const bool instant = e.closed && e.end == e.begin;
    w.Key("ph");
    w.String(instant ? "i" : "X");
    w.Key("pid");
    w.UInt(0);
    w.Key("tid");
    w.Int(e.lane);
    w.Key("ts");
    w.UInt(e.begin);
    if (instant) {
      w.Key("s");
      w.String("t");
    } else {
      w.Key("dur");
      w.UInt(e.end - e.begin);
    }
    if (!e.args.empty()) {
      w.Key("args");
      w.BeginObject();
      for (const auto& [k, v] : e.args) {
        w.Key(k);
        w.UInt(v);
      }
      w.EndObject();
    }
    w.EndObject();
    out += ",\n" + w.Take();
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string MetricsToJson(const MetricsRegistry::Snapshot& snap) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : snap.counters) {
    w.Key(name);
    w.UInt(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : snap.gauges) {
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  // Finite stand-in for the overflow bucket's +inf upper bound: JSON has no
  // inf literal, and the overflow bucket's lower boundary is `max` anyway.
  const auto finite = [](double x, double fallback) {
    return std::isfinite(x) ? x : fallback;
  };
  for (const auto& [name, h] : snap.histograms) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.UInt(h.count);
    w.Key("sum");
    w.Double(h.sum);
    w.Key("min");
    w.Double(h.options.min);
    w.Key("max");
    w.Double(h.options.max);
    w.Key("sub_bucket_bits");
    w.Int(h.options.sub_bucket_bits);
    // Sparse bucket listing: only non-empty buckets, as [upper_bound,
    // count] pairs. Exact boundaries, so a consumer can merge documents
    // from identically-shaped histograms bucket-by-bucket.
    w.Key("buckets");
    w.BeginArray();
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      w.BeginArray();
      w.Double(finite(h.BucketUpperBound(i), h.options.max));
      w.UInt(h.counts[i]);
      w.EndArray();
    }
    w.EndArray();
    w.Key("p50");
    w.Double(finite(h.QuantileUpperBound(0.50), h.options.max));
    w.Key("p95");
    w.Double(finite(h.QuantileUpperBound(0.95), h.options.max));
    w.Key("p99");
    w.Double(finite(h.QuantileUpperBound(0.99), h.options.max));
    w.Key("p999");
    w.Double(finite(h.QuantileUpperBound(0.999), h.options.max));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take() + "\n";
}

Status WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

namespace {

/// Hand-rolled tolerant JSON walker for the schema check: no external JSON
/// dependency is available in the image, and the exporter's output is
/// regular enough that full JSON generality is unnecessary — but the walker
/// still parses real strings/numbers/nesting so a malformed document fails
/// loudly rather than slipping past a substring match.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(std::string_view s) : s_(s) {}

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  const std::string& error() const { return error_; }

  void Ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    Ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool Expect(char c) {
    Ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return Fail("dangling escape");
      }
      out->push_back(s_[pos_++]);
    }
    if (pos_ >= s_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(double* out) {
    Ws();
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    const auto res =
        std::from_chars(s_.data() + start, s_.data() + pos_, *out);
    if (res.ec != std::errc()) return Fail("bad number");
    return true;
  }

  bool SkipValue() {
    Ws();
    if (pos_ >= s_.size()) return Fail("truncated value");
    const char c = s_[pos_];
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      Ws();
      if (Peek(close)) {
        ++pos_;
        return true;
      }
      while (true) {
        if (c == '{') {
          std::string key;
          if (!ParseString(&key) || !Expect(':')) return false;
        }
        if (!SkipValue()) return false;
        Ws();
        if (Peek(',')) {
          ++pos_;
          continue;
        }
        return Expect(close);
      }
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    double ignored;
    return ParseNumber(&ignored);
  }

  bool ValidateEvent() {
    if (!Expect('{')) return false;
    bool has_name = false, has_ph = false, has_pid = false, has_tid = false,
         has_ts = false, has_dur = false;
    std::string ph;
    double dur = 0.0;
    if (!Peek('}')) {
      while (true) {
        std::string key;
        if (!ParseString(&key) || !Expect(':')) return false;
        if (key == "name") {
          std::string name;
          if (!ParseString(&name)) return false;
          has_name = true;
        } else if (key == "ph") {
          if (!ParseString(&ph)) return false;
          has_ph = true;
        } else if (key == "pid" || key == "tid" || key == "ts") {
          double v;
          if (!ParseNumber(&v)) return false;
          (key == "pid" ? has_pid : key == "tid" ? has_tid : has_ts) = true;
        } else if (key == "dur") {
          if (!ParseNumber(&dur)) return false;
          has_dur = true;
        } else {
          if (!SkipValue()) return false;
        }
        Ws();
        if (Peek(',')) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    if (!Expect('}')) return false;
    if (!has_name || !has_ph || !has_pid || !has_tid) {
      return Fail("event missing name/ph/pid/tid");
    }
    if (ph != "M" && !has_ts) return Fail("non-metadata event missing ts");
    if (ph == "X" && (!has_dur || dur < 0.0)) {
      return Fail("X event missing non-negative dur");
    }
    return true;
  }

  bool Validate() {
    if (!Expect('{')) return false;
    bool saw_events = false;
    while (true) {
      std::string key;
      if (!ParseString(&key) || !Expect(':')) return false;
      if (key == "traceEvents") {
        saw_events = true;
        if (!Expect('[')) return false;
        Ws();
        if (Peek(']')) {
          ++pos_;
        } else {
          while (true) {
            if (!ValidateEvent()) return false;
            Ws();
            if (Peek(',')) {
              ++pos_;
              continue;
            }
            if (!Expect(']')) return false;
            break;
          }
        }
      } else {
        if (!SkipValue()) return false;
      }
      Ws();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      break;
    }
    if (!Expect('}')) return false;
    if (!saw_events) return Fail("missing traceEvents");
    return true;
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Status ValidateChromeTraceJson(const std::string& json) {
  MiniJsonParser parser(json);
  if (!parser.Validate()) {
    return Status::InvalidArgument("invalid Chrome trace: " + parser.error());
  }
  return Status::OK();
}

}  // namespace dita::obs
