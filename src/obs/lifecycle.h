#ifndef DITA_OBS_LIFECYCLE_H_
#define DITA_OBS_LIFECYCLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace dita::obs {

/// Per-request lifecycle record: the serving plane's unit of traceability.
///
/// Phase durations are defined as differences of *consecutive* boundary
/// timestamps taken on one steady clock, so by construction
///   queue + admission + cache + pin + base + delta + finalize
/// telescopes to total_seconds exactly (up to floating-point rounding) —
/// there is no unaccounted time and no double counting. The phases:
///
///   queue      Submit enqueue -> executor pickup (0 for synchronous
///              Execute), plus any coalescing linger.
///   admission  scheduler/gate Acquire: queue-wait for slots, including
///              the wait before a shed.
///   cache      answer-cache key derivation + lookup (and store).
///   pin        snapshot pin: epoch/version resolution.
///   base       filter+verify over the immutable base index (the
///              sketch/trie/verify funnel, or join terms over the base).
///   delta      unmerged-insert scan + deleted filtering.
///   finalize   sort/dedup, stats, explain, cache store.
///
/// merge_overlap_seconds is informational — how much of the request's run
/// overlapped background epoch-merge activity — and deliberately NOT part
/// of the telescoping sum.
///
/// Kept as a flat POD of integral words + doubles so the flight recorder
/// can serialize it into a fixed array of atomic words (see below). Enum
/// fields are stored widened (QueryKind, QueryContext::StopCause,
/// StatusCode) to keep this header dependency-free below obs.
struct RequestRecord {
  // Flags bits.
  static constexpr uint8_t kCacheHit = 1 << 0;
  static constexpr uint8_t kCoalesced = 1 << 1;  // served via a batch
  static constexpr uint8_t kDegraded = 1 << 2;   // partial under budget/stop
  static constexpr uint8_t kShed = 1 << 3;       // rejected at admission
  static constexpr uint8_t kAsync = 1 << 4;      // arrived via Submit

  uint64_t request_id = 0;
  uint8_t kind = 0;         // QueryKind
  uint8_t stop_cause = 0;   // QueryContext::StopCause
  uint8_t status_code = 0;  // StatusCode
  uint8_t flags = 0;
  uint32_t results = 0;  // ids / pairs / neighbors produced
  uint64_t epoch = 0;
  uint64_t version = 0;

  double arrival_seconds = 0.0;  // service-relative steady clock
  double queue_seconds = 0.0;
  double admission_seconds = 0.0;
  double cache_seconds = 0.0;
  double pin_seconds = 0.0;
  double base_seconds = 0.0;
  double delta_seconds = 0.0;
  double finalize_seconds = 0.0;
  double total_seconds = 0.0;
  double merge_overlap_seconds = 0.0;

  bool cache_hit() const { return (flags & kCacheHit) != 0; }
  bool coalesced() const { return (flags & kCoalesced) != 0; }
  bool degraded() const { return (flags & kDegraded) != 0; }
  bool shed() const { return (flags & kShed) != 0; }

  /// Sum of the telescoping phases; equals total_seconds up to rounding.
  double PhaseSum() const {
    return queue_seconds + admission_seconds + cache_seconds + pin_seconds +
           base_seconds + delta_seconds + finalize_seconds;
  }
};

/// Always-on flight recorder: a fixed-size lock-free ring of the last N
/// RequestRecords, cheap enough to leave enabled in production so the
/// moments *before* an incident are always on hand.
///
/// Writers claim a ticket with one fetch_add and publish through a per-slot
/// seqlock: seq = 2t+1 while writing ticket t, 2t+2 once published. The
/// record payload is stored as relaxed atomic words, so concurrent
/// writer/reader overlap is well-defined (no data race, TSan-clean) and the
/// seq check filters mixed-generation slots out of snapshots. Record() is
/// wait-free apart from the single fetch_add and never allocates.
class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two; 0 disables recording.
  explicit FlightRecorder(size_t capacity);

  bool enabled() const { return capacity_ != 0; }
  size_t capacity() const { return capacity_; }

  /// Total records ever written (>= capacity means the ring has wrapped).
  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  void Record(const RequestRecord& r);

  /// Consistent copies of the most recent records, oldest first. Slots
  /// mid-overwrite are skipped, so under heavy concurrent writing the
  /// result may have slightly fewer than capacity() entries.
  std::vector<RequestRecord> Snapshot() const;

 private:
  // 4 integral words + 10 doubles.
  static constexpr size_t kWords = 14;
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[kWords];
  };

  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};
};

}  // namespace dita::obs

#endif  // DITA_OBS_LIFECYCLE_H_
