#include "obs/funnel.h"

#include <cstdio>

namespace dita::obs {

bool FilterFunnel::MonotonicallyNonIncreasing() const {
  for (size_t i = 1; i < levels.size(); ++i) {
    if (levels[i].survivors > levels[i - 1].survivors) return false;
  }
  return true;
}

std::string FilterFunnel::ToTable() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-24s %14s %10s %10s\n", "filter level",
                "survivors", "of total", "of prev");
  out += buf;
  const double total =
      levels.empty() ? 0.0 : static_cast<double>(levels.front().survivors);
  uint64_t prev = levels.empty() ? 0 : levels.front().survivors;
  for (const Level& l : levels) {
    const double of_total =
        total > 0.0 ? static_cast<double>(l.survivors) / total : 0.0;
    const double of_prev =
        prev > 0 ? static_cast<double>(l.survivors) / static_cast<double>(prev)
                 : 0.0;
    std::snprintf(buf, sizeof(buf), "%-24s %14llu %9.2f%% %9.2f%%\n",
                  l.label.c_str(),
                  static_cast<unsigned long long>(l.survivors),
                  100.0 * of_total, 100.0 * of_prev);
    out += buf;
    prev = l.survivors;
  }
  return out;
}

std::string FilterFunnel::ToJson() const {
  std::string out = "[";
  char buf[64];
  for (size_t i = 0; i < levels.size(); ++i) {
    out += "{\"label\": \"";
    // Labels are internal identifiers (no quotes/backslashes), but escape
    // defensively so the emitted JSON can never be malformed.
    for (char c : levels[i].label) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    std::snprintf(buf, sizeof(buf), "\", \"survivors\": %llu}",
                  static_cast<unsigned long long>(levels[i].survivors));
    out += buf;
    if (i + 1 < levels.size()) out += ", ";
  }
  out += "]";
  return out;
}

}  // namespace dita::obs
