#ifndef DITA_OBS_EXPORT_H_
#define DITA_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace dita::obs {

/// Minimal JSON string builder shared by the exporters and the bench
/// harness's provenance stamp. Emits objects field by field; callers are
/// responsible for overall document structure.
class JsonWriter {
 public:
  void BeginObject() {
    Sep();
    out_ += '{';
    first_ = true;
  }
  void EndObject() {
    out_ += '}';
    first_ = false;
  }
  void BeginArray() {
    Sep();
    out_ += '[';
    first_ = true;
  }
  void EndArray() {
    out_ += ']';
    first_ = false;
  }
  void Key(std::string_view key) {
    Sep();
    AppendString(key);
    out_ += ": ";
    first_ = true;  // the value itself must not emit a separator
  }
  void String(std::string_view v) {
    Sep();
    AppendString(v);
  }
  void UInt(uint64_t v);
  void Int(int64_t v);
  /// Shortest round-trip formatting, so equal doubles always serialize to
  /// identical bytes (required by the trace-determinism guarantee).
  void Double(double v);
  void Raw(std::string_view fragment) {
    Sep();
    out_ += fragment;
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Sep() {
    if (!first_) out_ += ", ";
    first_ = false;
  }
  void AppendString(std::string_view v);

  std::string out_;
  bool first_ = true;
};

/// Serializes the tracer's spans as Chrome trace_event JSON ("X" complete
/// events plus process/thread metadata), loadable in chrome://tracing and
/// Perfetto. Timestamps are the tracer's deterministic ticks, exported as
/// microseconds. Unclosed spans are exported with zero duration.
std::string ToChromeTraceJson(const Tracer& tracer);

/// Flat JSON of a metrics snapshot: name-ordered counters, gauges, and
/// histograms.
std::string MetricsToJson(const MetricsRegistry::Snapshot& snap);
inline std::string MetricsToJson(const MetricsRegistry& registry) {
  return MetricsToJson(registry.Snap());
}

/// Writes `content` to `path`; fails with Status::Internal on I/O errors.
Status WriteFile(const std::string& path, const std::string& content);

/// Minimal structural validation of a Chrome trace produced by
/// ToChromeTraceJson: the document parses as {"traceEvents": [...]}, every
/// event carries name/ph/pid/tid/ts, and every "X" event carries a
/// non-negative dur. Returns InvalidArgument naming the first violation.
/// This is the ctest-driven schema check the ci.sh obs pass runs.
Status ValidateChromeTraceJson(const std::string& json);

}  // namespace dita::obs

#endif  // DITA_OBS_EXPORT_H_
