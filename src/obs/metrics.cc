#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dita::obs {

uint32_t ThreadShardIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

namespace {

// Raw log-linear bucket number of a positive double at the given shift:
// exponent bits concatenated with the top sub_bucket_bits of the mantissa.
uint64_t RawBucket(double v, int shift) {
  return std::bit_cast<uint64_t>(v) >> shift;
}

double BoundaryOf(uint64_t raw, int shift) {
  return std::bit_cast<double>(raw << shift);
}

}  // namespace

Histogram::Histogram(Options opts) : opts_(opts) {
  opts_.sub_bucket_bits = std::clamp(opts_.sub_bucket_bits, 0, 8);
  if (!(opts_.min > 0.0) || !std::isfinite(opts_.min)) opts_.min = 1e-9;
  if (!(opts_.max > opts_.min) || !std::isfinite(opts_.max)) {
    opts_.max = opts_.min * 2.0;
  }
  shift_ = 52 - opts_.sub_bucket_bits;
  raw_min_ = RawBucket(opts_.min, shift_);
  raw_max_ = RawBucket(opts_.max, shift_);
  if (raw_max_ <= raw_min_) raw_max_ = raw_min_ + 1;
  // Normalize min/max to their exact bucket boundaries so two histograms
  // constructed from equal Options snapshot identical shapes.
  opts_.min = BoundaryOf(raw_min_, shift_);
  opts_.max = BoundaryOf(raw_max_, shift_);
  // Bucket 0 = underflow, 1..raw_max-raw_min = log-linear core, last =
  // overflow (values >= max's bucket boundary).
  bucket_count_ = static_cast<size_t>(raw_max_ - raw_min_) + 2;
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<uint64_t>[]>(bucket_count_);
    for (size_t b = 0; b < bucket_count_; ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.options = opts_;
  snap.counts.assign(bucket_count_, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < bucket_count_; ++b) {
      snap.counts[b] += s.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  return snap;
}

double Histogram::Snapshot::BucketLowerBound(size_t i) const {
  if (i == 0) return 0.0;
  const int shift = 52 - std::clamp(options.sub_bucket_bits, 0, 8);
  const uint64_t raw_min = RawBucket(options.min, shift);
  const uint64_t raw_max = RawBucket(options.max, shift);
  const uint64_t raw = std::min(raw_min + (i - 1), raw_max);
  return BoundaryOf(raw, shift);
}

double Histogram::Snapshot::BucketUpperBound(size_t i) const {
  if (!counts.empty() && i + 1 >= counts.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return BucketLowerBound(i + 1);
}

double Histogram::Snapshot::QuantileLowerBound(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based, matching the sorted-sample
  // definition v[ceil(q*n)] (clamped to at least the first sample).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketLowerBound(i);
  }
  return BucketLowerBound(counts.empty() ? 0 : counts.size() - 1);
}

double Histogram::Snapshot::QuantileUpperBound(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return std::numeric_limits<double>::infinity();
}

bool Histogram::Snapshot::MergeFrom(const Snapshot& other) {
  if (!(options == other.options) || counts.size() != other.counts.size()) {
    return false;
  }
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
  return true;
}

Histogram::Options LatencyOptions() {
  return Histogram::Options{1e-7, 1e4, 4};
}

Histogram::Options CountOptions() {
  return Histogram::Options{1.0, 1073741824.0, 2};
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         Histogram::Options opts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(opts))
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  // std::map iteration is name-ordered, which is what makes exports (and
  // the trace-determinism tests built on them) reproducible.
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snap());
  }
  return snap;
}

size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace dita::obs
