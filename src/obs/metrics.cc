#include "obs/metrics.h"

namespace dita::obs {

uint32_t ThreadShardIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  const size_t buckets = bounds_.size() + 1;
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<uint64_t>[]>(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] += s.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  return snap;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  // std::map iteration is name-ordered, which is what makes exports (and
  // the trace-determinism tests built on them) reproducible.
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snap());
  }
  return snap;
}

size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<double> PowersOfTwoBounds(size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = 1.0;
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= 2.0;
  }
  return bounds;
}

std::vector<double> LinearBounds(double start, double step, size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  for (size_t i = 0; i < n; ++i) bounds.push_back(start + step * i);
  return bounds;
}

}  // namespace dita::obs
