#include "obs/lifecycle.h"

#include <bit>

namespace dita::obs {

namespace {

void Encode(const RequestRecord& r, uint64_t out[]) {
  out[0] = r.request_id;
  out[1] = static_cast<uint64_t>(r.kind) |
           (static_cast<uint64_t>(r.stop_cause) << 8) |
           (static_cast<uint64_t>(r.status_code) << 16) |
           (static_cast<uint64_t>(r.flags) << 24) |
           (static_cast<uint64_t>(r.results) << 32);
  out[2] = r.epoch;
  out[3] = r.version;
  const double d[10] = {r.arrival_seconds,  r.queue_seconds,
                        r.admission_seconds, r.cache_seconds,
                        r.pin_seconds,       r.base_seconds,
                        r.delta_seconds,     r.finalize_seconds,
                        r.total_seconds,     r.merge_overlap_seconds};
  for (size_t i = 0; i < 10; ++i) out[4 + i] = std::bit_cast<uint64_t>(d[i]);
}

RequestRecord Decode(const uint64_t in[]) {
  RequestRecord r;
  r.request_id = in[0];
  r.kind = static_cast<uint8_t>(in[1]);
  r.stop_cause = static_cast<uint8_t>(in[1] >> 8);
  r.status_code = static_cast<uint8_t>(in[1] >> 16);
  r.flags = static_cast<uint8_t>(in[1] >> 24);
  r.results = static_cast<uint32_t>(in[1] >> 32);
  r.epoch = in[2];
  r.version = in[3];
  double d[10];
  for (size_t i = 0; i < 10; ++i) d[i] = std::bit_cast<double>(in[4 + i]);
  r.arrival_seconds = d[0];
  r.queue_seconds = d[1];
  r.admission_seconds = d[2];
  r.cache_seconds = d[3];
  r.pin_seconds = d[4];
  r.base_seconds = d[5];
  r.delta_seconds = d[6];
  r.finalize_seconds = d[7];
  r.total_seconds = d[8];
  r.merge_overlap_seconds = d[9];
  return r;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity) {
  if (capacity == 0) return;
  capacity_ = std::bit_ceil(capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

void FlightRecorder::Record(const RequestRecord& r) {
  if (!enabled()) return;
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  uint64_t words[kWords];
  Encode(r, words);
  // Seqlock write: odd marks the slot torn, the release fence orders the
  // odd mark before the payload stores, the release publish orders the
  // payload before the even mark (Boehm's seqlock-with-atomics recipe).
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<RequestRecord> FlightRecorder::Snapshot() const {
  std::vector<RequestRecord> out;
  if (!enabled()) return out;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t n = head < capacity_ ? head : capacity_;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t t = head - n; t < head; ++t) {
    const Slot& slot = slots_[t & mask_];
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != 2 * t + 2) continue;  // mid-write or already lapped
    uint64_t words[kWords];
    for (size_t i = 0; i < kWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;
    out.push_back(Decode(words));
  }
  return out;
}

}  // namespace dita::obs
