#include "util/logging.h"

#include <cctype>
#include <mutex>

namespace dita {
namespace {

/// Default sink: tagged line to stderr, serialised so concurrent log
/// statements don't interleave mid-line.
void StderrSink(LogLevel level, const char* file, int line,
                const std::string& msg) {
  static std::mutex mu;
  const char* tag = "I";
  switch (level) {
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kWarn:
      tag = "W";
      break;
    case LogLevel::kError:
      tag = "E";
      break;
  }
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", tag, file, line, msg.c_str());
}

LogSink& CurrentSink() {
  static LogSink sink = StderrSink;
  return sink;
}

LogLevel LevelFromEnv() {
  const char* spec = std::getenv("DITA_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (spec != nullptr) ParseLogLevel(spec, &level);
  return level;
}

}  // namespace

namespace log_internal {

LogLevel& MinLevel() {
  static LogLevel level = LevelFromEnv();
  return level;
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  CurrentSink()(level, file, line, msg);
}

}  // namespace log_internal

void SetLogLevel(LogLevel level) { log_internal::MinLevel() = level; }

bool ParseLogLevel(std::string_view spec, LogLevel* out) {
  std::string lower;
  lower.reserve(spec.size());
  for (char c : spec)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "2") {
    *out = LogLevel::kWarn;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogSink SetLogSink(LogSink sink) {
  LogSink previous = std::move(CurrentSink());
  CurrentSink() = sink ? std::move(sink) : LogSink(StderrSink);
  return previous;
}

}  // namespace dita
