#include "util/logging.h"

#include <mutex>

namespace dita {
namespace log_internal {

LogLevel& MinLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  static std::mutex mu;
  const char* tag = "I";
  switch (level) {
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kWarn:
      tag = "W";
      break;
    case LogLevel::kError:
      tag = "E";
      break;
  }
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", tag, file, line, msg.c_str());
}

}  // namespace log_internal

void SetLogLevel(LogLevel level) { log_internal::MinLevel() = level; }

}  // namespace dita
