#ifndef DITA_UTIL_TIMER_H_
#define DITA_UTIL_TIMER_H_

#include <chrono>
#include <ctime>

namespace dita {

/// Measures wall-clock time in seconds with steady_clock resolution.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Measures per-thread CPU time in seconds. Used by the cluster simulator to
/// charge task compute cost independently of scheduling noise.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  void Reset() { start_ = Now(); }

  double Seconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  double start_;
};

}  // namespace dita

#endif  // DITA_UTIL_TIMER_H_
