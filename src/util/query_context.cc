#include "util/query_context.h"

namespace dita {

void QueryContext::SetWallDeadlineSeconds(double seconds) {
  has_wall_deadline_ = true;
  wall_deadline_ = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(seconds));
}

void QueryContext::Stop(StopCause cause) {
  uint8_t expected = static_cast<uint8_t>(StopCause::kNone);
  if (stop_cause_.compare_exchange_strong(expected,
                                          static_cast<uint8_t>(cause),
                                          std::memory_order_acq_rel)) {
    // First stop wins; sample the ops counter so time-to-stop (work done
    // after this point) is measurable.
    ops_at_stop_.store(ops_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
}

bool QueryContext::CheckPoint(uint64_t ops) {
  const uint64_t now = ops_.fetch_add(ops, std::memory_order_relaxed) + ops;
  if (stopped()) return true;
  const uint64_t trigger = cancel_after_ops_.load(std::memory_order_relaxed);
  if (trigger != 0 && now >= trigger) {
    Stop(StopCause::kCancelled);
    return true;
  }
  if (has_wall_deadline_ &&
      (wall_polls_.fetch_add(1, std::memory_order_relaxed) & 7) == 0 &&
      std::chrono::steady_clock::now() >= wall_deadline_) {
    Stop(StopCause::kWallDeadline);
    return true;
  }
  return false;
}

bool QueryContext::ChargeCandidates(uint64_t n) {
  const uint64_t total =
      candidates_.fetch_add(n, std::memory_order_relaxed) + n;
  if (budget_.max_candidates != 0 && total > budget_.max_candidates) {
    Stop(StopCause::kCandidateBudget);
  }
  return stopped();
}

bool QueryContext::ChargeDpCells(uint64_t n) {
  const uint64_t total = dp_cells_.fetch_add(n, std::memory_order_relaxed) + n;
  if (budget_.max_dp_cells != 0 && total > budget_.max_dp_cells) {
    Stop(StopCause::kDpCellBudget);
  }
  return stopped();
}

bool QueryContext::CheckScratchBytes(uint64_t bytes) {
  if (budget_.max_scratch_bytes != 0 && bytes > budget_.max_scratch_bytes) {
    Stop(StopCause::kScratchBudget);
  }
  return stopped();
}

bool QueryContext::ObserveVirtualSeconds(double elapsed_seconds) {
  if (virtual_deadline_seconds_ > 0.0 &&
      elapsed_seconds > virtual_deadline_seconds_) {
    Stop(StopCause::kVirtualDeadline);
  }
  return stopped();
}

Status QueryContext::ToStatus() const {
  switch (stop_cause()) {
    case StopCause::kNone:
      return Status::OK();
    case StopCause::kCancelled:
      return Status::Cancelled("query cancelled");
    case StopCause::kWallDeadline:
      return Status::DeadlineExceeded("query wall-clock deadline exceeded");
    case StopCause::kVirtualDeadline:
      return Status::DeadlineExceeded("query virtual-time deadline exceeded");
    case StopCause::kCandidateBudget:
      return Status::ResourceExhausted("candidate budget exhausted");
    case StopCause::kDpCellBudget:
      return Status::ResourceExhausted("dp cell budget exhausted");
    case StopCause::kScratchBudget:
      return Status::ResourceExhausted("scratch byte budget exceeded");
  }
  return Status::Internal("unknown stop cause");
}

void QueryContext::Reset() {
  cancel_after_ops_.store(0, std::memory_order_relaxed);
  ops_.store(0, std::memory_order_relaxed);
  candidates_.store(0, std::memory_order_relaxed);
  dp_cells_.store(0, std::memory_order_relaxed);
  ops_at_stop_.store(0, std::memory_order_relaxed);
  wall_polls_.store(0, std::memory_order_relaxed);
  stop_cause_.store(static_cast<uint8_t>(StopCause::kNone),
                    std::memory_order_release);
  has_wall_deadline_ = false;
  virtual_deadline_seconds_ = 0.0;
  budget_ = ResourceBudget{};
}

}  // namespace dita
