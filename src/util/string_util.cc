#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace dita {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrTrim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return StrFormat("%.1f %s", bytes, units[u]);
}

}  // namespace dita
