#ifndef DITA_UTIL_STRING_UTIL_H_
#define DITA_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace dita {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& s, char delim);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep);

/// Trims ASCII whitespace from both ends.
std::string StrTrim(const std::string& s);

/// ASCII upper-casing (used by the SQL tokenizer for keywords).
std::string StrToUpper(const std::string& s);

/// Renders a byte count as a human-readable string, e.g. "1.4 MB".
std::string HumanBytes(double bytes);

}  // namespace dita

#endif  // DITA_UTIL_STRING_UTIL_H_
