#ifndef DITA_UTIL_LOGGING_H_
#define DITA_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace dita {

/// Log severity for the lightweight logging macros below.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Where emitted log records go. The default sink writes
/// "[<tag> <file>:<line>] <msg>" lines to stderr under a mutex.
using LogSink =
    std::function<void(LogLevel, const char* file, int line,
                       const std::string& msg)>;

namespace log_internal {

/// Process-wide minimum severity. Initialised once from the DITA_LOG_LEVEL
/// environment variable ("debug"/"info"/"warn"/"error" or 0-3, case
/// insensitive); defaults to kInfo when unset or unparseable.
LogLevel& MinLevel();

void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Accumulates one log statement's stream and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

/// Sets the process-wide minimum log level (default kInfo, or whatever
/// DITA_LOG_LEVEL selected at startup).
void SetLogLevel(LogLevel level);

/// Parses a DITA_LOG_LEVEL-style spec into a level. Accepts the names
/// "debug"/"info"/"warn"/"error" (any case, "warning" works too) and the
/// digits 0-3. Returns false and leaves `out` untouched on anything else.
bool ParseLogLevel(std::string_view spec, LogLevel* out);

/// Replaces the process-wide log sink and returns the previous one. Passing
/// a null sink restores the default stderr sink. Not thread-safe against
/// concurrent logging — install sinks during setup (tests, main()).
LogSink SetLogSink(LogSink sink);

}  // namespace dita

#define DITA_LOG(level)                                                       \
  if (::dita::LogLevel::level < ::dita::log_internal::MinLevel()) {           \
  } else                                                                      \
    ::dita::log_internal::LogMessage(::dita::LogLevel::level, __FILE__,       \
                                     __LINE__)                                \
        .stream()

/// Fatal check; aborts with a message when the condition fails. Used for
/// programmer errors (broken invariants), never for user input.
#define DITA_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "DITA_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#endif  // DITA_UTIL_LOGGING_H_
