#ifndef DITA_UTIL_THREAD_POOL_H_
#define DITA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dita {

/// Fixed-size pool of worker threads executing queued tasks FIFO. Used by the
/// cluster simulator to actually run per-partition tasks; accounting of
/// *virtual* worker time is handled by the cluster layer, not here.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution by some pool thread.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running. If any task
  /// threw, the first captured exception is rethrown here (and cleared, so
  /// the pool stays usable); the remaining tasks still ran to completion.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  /// First exception thrown by a task since the last Wait(), if any.
  std::exception_ptr pending_exception_;
};

}  // namespace dita

#endif  // DITA_UTIL_THREAD_POOL_H_
