#ifndef DITA_UTIL_THREAD_POOL_H_
#define DITA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dita {

/// Fixed-size pool of worker threads executing queued tasks FIFO. Used by the
/// cluster simulator to actually run per-partition tasks; accounting of
/// *virtual* worker time is handled by the cluster layer, not here.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution by some pool thread.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running. If any task
  /// threw, the first captured exception is rethrown here (and cleared, so
  /// the pool stays usable); the remaining tasks still ran to completion.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(lo, hi)` over disjoint chunks covering [0, count), blocking
  /// until every chunk finishes. Chunk boundaries depend only on `count` and
  /// the pool width, and each chunk writes only its own slots, so results
  /// are deterministic. Waits on a private latch rather than Wait(): the
  /// pool may be shared with other concurrent callers. The first exception
  /// thrown by a chunk is rethrown after all chunks drain.
  ///
  /// Returns the summed CPU seconds measured on the helper threads (0 when
  /// the call ran inline because `pool` was null, single-threaded, or
  /// `count < min_parallel`). Callers running inside a cluster task must
  /// charge that time back (Cluster::ChargeCurrentTask) so offloaded work
  /// stays in the virtual-time ledger.
  static double ParallelFor(ThreadPool* pool, size_t count, size_t min_parallel,
                            const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  /// First exception thrown by a task since the last Wait(), if any.
  std::exception_ptr pending_exception_;
};

}  // namespace dita

#endif  // DITA_UTIL_THREAD_POOL_H_
