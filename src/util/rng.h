#ifndef DITA_UTIL_RNG_H_
#define DITA_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace dita {

/// Deterministic seeded random number generator used across workload
/// generation, sampling, and tests so every experiment is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return Uniform(0.0, 1.0) < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dita

#endif  // DITA_UTIL_RNG_H_
