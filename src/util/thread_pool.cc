#include "util/thread_pool.h"

#include <algorithm>
#include <ctime>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace dita {

ThreadPool::ThreadPool(size_t num_threads) {
  DITA_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DITA_CHECK(!shutting_down_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (pending_exception_) {
    std::exception_ptr e = std::exchange(pending_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

double ThreadPool::ParallelFor(ThreadPool* pool, size_t count,
                               size_t min_parallel,
                               const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return 0.0;
  if (pool == nullptr || pool->num_threads() < 2 ||
      count < std::max<size_t>(min_parallel, 2)) {
    fn(0, count);
    return 0.0;
  }

  const size_t chunk_count = std::min(count, pool->num_threads() * 4);
  const size_t chunk_len = (count + chunk_count - 1) / chunk_count;
  std::vector<double> chunk_cpu(chunk_count, 0.0);

  struct Sync {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining = 0;
    std::exception_ptr error;
  } sync;
  size_t launched = 0;
  for (size_t c = 0; c < chunk_count && c * chunk_len < count; ++c) ++launched;
  sync.remaining = launched;

  for (size_t c = 0; c < launched; ++c) {
    const size_t lo = c * chunk_len;
    const size_t hi = std::min(count, lo + chunk_len);
    pool->Submit([&fn, &sync, &chunk_cpu, lo, hi, c] {
      timespec ts0, ts1;
      clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts0);
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(sync.mu);
        if (!sync.error) sync.error = std::current_exception();
      }
      clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts1);
      chunk_cpu[c] = static_cast<double>(ts1.tv_sec - ts0.tv_sec) +
                     static_cast<double>(ts1.tv_nsec - ts0.tv_nsec) * 1e-9;
      std::lock_guard<std::mutex> lock(sync.mu);
      if (--sync.remaining == 0) sync.done.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(sync.mu);
    sync.done.wait(lock, [&sync] { return sync.remaining == 0; });
  }
  if (sync.error) std::rethrow_exception(sync.error);

  double offloaded = 0.0;
  for (size_t c = 0; c < launched; ++c) offloaded += chunk_cpu[c];
  return offloaded;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
    }
    // A throwing task must not escape the worker thread (std::terminate) or
    // leak its in_flight_ slot (Wait() would hang). Capture the first
    // exception for Wait() to rethrow.
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (thrown && !pending_exception_) pending_exception_ = thrown;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dita
