#include "util/thread_pool.h"

#include "util/logging.h"

namespace dita {

ThreadPool::ThreadPool(size_t num_threads) {
  DITA_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DITA_CHECK(!shutting_down_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dita
