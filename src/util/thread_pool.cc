#include "util/thread_pool.h"

#include <utility>

#include "util/logging.h"

namespace dita {

ThreadPool::ThreadPool(size_t num_threads) {
  DITA_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DITA_CHECK(!shutting_down_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (pending_exception_) {
    std::exception_ptr e = std::exchange(pending_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
    }
    // A throwing task must not escape the worker thread (std::terminate) or
    // leak its in_flight_ slot (Wait() would hang). Capture the first
    // exception for Wait() to rethrow.
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (thrown && !pending_exception_) pending_exception_ = thrown;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dita
