#include "util/status.h"

namespace dita {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dita
