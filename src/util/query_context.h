#ifndef DITA_UTIL_QUERY_CONTEXT_H_
#define DITA_UTIL_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace dita {

/// Per-query resource budget. Every limit is a hard cap on work charged via
/// QueryContext; 0 means unlimited. Exceeding a budget stops the query
/// cooperatively — long-running loops observe the stop at their next charge
/// point and the engine returns whatever subset of the answer was completed.
struct ResourceBudget {
  /// Cap on candidates emitted by trie traversals (summed over partitions).
  uint64_t max_candidates = 0;
  /// Cap on DP matrix cells admitted to verification (|T| x |Q| per pair).
  uint64_t max_dp_cells = 0;
  /// Cap on per-thread DP scratch bytes; checked before DP batches so one
  /// giant trajectory pair cannot balloon a worker's scratch arena.
  uint64_t max_scratch_bytes = 0;
};

/// Cooperative cancellation token + deadline + resource budget for one
/// query. Allocation-free and thread-safe: one context is shared by the
/// driver and every worker task of the query, all charge points are relaxed
/// atomics, and the first stop cause wins and sticks.
///
/// Charge points are placed where the engine loops (trie node visits, DP
/// kernel row blocks, verification candidates, stage boundaries), so a
/// stopped query unwinds within a bounded amount of extra work — bounded by
/// the checkpoint strides, measured in bench_cancellation.cpp — rather than
/// at the next stage boundary.
class QueryContext {
 public:
  /// Why the query stopped. kNone means it is still running (or finished).
  enum class StopCause : uint8_t {
    kNone = 0,
    kCancelled,        // explicit Cancel() / CancelAfterOps trigger
    kWallDeadline,     // wall-clock deadline passed
    kVirtualDeadline,  // cost-model virtual time exceeded the deadline
    kCandidateBudget,
    kDpCellBudget,
    kScratchBudget,
  };

  /// Stable lower_snake_case name for a stop cause — the flight recorder
  /// and SLO reports key shed/degraded breakdowns on these strings.
  static const char* StopCauseName(StopCause cause) {
    switch (cause) {
      case StopCause::kNone:
        return "none";
      case StopCause::kCancelled:
        return "cancelled";
      case StopCause::kWallDeadline:
        return "wall_deadline";
      case StopCause::kVirtualDeadline:
        return "virtual_deadline";
      case StopCause::kCandidateBudget:
        return "candidate_budget";
      case StopCause::kDpCellBudget:
        return "dp_cell_budget";
      case StopCause::kScratchBudget:
        return "scratch_budget";
    }
    return "unknown";
  }

  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // --- Configuration. Set before handing the context to a query. ---

  void set_budget(const ResourceBudget& budget) { budget_ = budget; }
  const ResourceBudget& budget() const { return budget_; }

  /// Wall-clock deadline, `seconds` from now (steady clock). Checked at
  /// charge points, rate-limited so the hot path stays clock-free.
  void SetWallDeadlineSeconds(double seconds);

  /// Virtual-time deadline in cost-model seconds; the engine reports the
  /// query's accumulated makespan at stage boundaries (ObserveVirtualSeconds)
  /// and the context stops once it exceeds this. Deterministic under the
  /// simulated clock, unlike the wall deadline. 0 disables.
  void set_virtual_deadline_seconds(double seconds) {
    virtual_deadline_seconds_ = seconds;
  }

  /// Deterministic self-cancel: the context cancels itself at the first
  /// charge point where cumulative observed ops reach `n`. Tests and
  /// bench_cancellation use this to place reproducible mid-flight
  /// cancellations without racing a second thread. 0 disables.
  void CancelAfterOps(uint64_t n) {
    cancel_after_ops_.store(n, std::memory_order_relaxed);
  }

  // --- Control / inspection. ---

  /// Requests a cooperative stop. Thread-safe, idempotent; the first stop
  /// cause (from any thread) wins.
  void Cancel() { Stop(StopCause::kCancelled); }

  bool stopped() const {
    return stop_cause_.load(std::memory_order_acquire) !=
           static_cast<uint8_t>(StopCause::kNone);
  }
  StopCause stop_cause() const {
    return static_cast<StopCause>(stop_cause_.load(std::memory_order_acquire));
  }

  /// OK while running; Cancelled / DeadlineExceeded / ResourceExhausted once
  /// stopped, matching the engine's degraded-result tagging.
  Status ToStatus() const;

  /// Work units observed so far (trie node visits, DP rows, verification
  /// candidates — whatever the charge points count).
  uint64_t ops_observed() const {
    return ops_.load(std::memory_order_relaxed);
  }
  /// ops_observed() sampled when the stop was first flagged; the difference
  /// against the final ops_observed() is the work done after the stop — the
  /// time-to-stop metric bench_cancellation reports.
  uint64_t ops_at_stop() const {
    return ops_at_stop_.load(std::memory_order_relaxed);
  }
  uint64_t candidates_charged() const {
    return candidates_.load(std::memory_order_relaxed);
  }
  uint64_t dp_cells_charged() const {
    return dp_cells_.load(std::memory_order_relaxed);
  }

  // --- Charge points (hot paths). All return true when the query must
  // stop; callers unwind, dropping or tagging their partial output. ---

  /// Observes `ops` units of work; evaluates the self-cancel trigger and
  /// (rate-limited) the wall deadline.
  bool CheckPoint(uint64_t ops);

  /// Charges `n` emitted candidates against max_candidates.
  bool ChargeCandidates(uint64_t n);

  /// Charges `n` DP matrix cells against max_dp_cells.
  bool ChargeDpCells(uint64_t n);

  /// Tests a scratch arena size against max_scratch_bytes (a cap, not a
  /// cumulative charge: scratch is reused, not consumed).
  bool CheckScratchBytes(uint64_t bytes);

  /// Driver-side: reports the query's accumulated virtual-time makespan at a
  /// stage boundary; stops the query once it exceeds the virtual deadline.
  bool ObserveVirtualSeconds(double elapsed_seconds);

  /// Clears stop state and counters so one context can be reused across
  /// sequential queries (tests, benches, the soak harness). Not thread-safe;
  /// never call while a query is in flight.
  void Reset();

 private:
  void Stop(StopCause cause);

  ResourceBudget budget_;
  double virtual_deadline_seconds_ = 0.0;
  bool has_wall_deadline_ = false;
  std::chrono::steady_clock::time_point wall_deadline_{};

  std::atomic<uint64_t> cancel_after_ops_{0};
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> candidates_{0};
  std::atomic<uint64_t> dp_cells_{0};
  std::atomic<uint64_t> ops_at_stop_{0};
  /// Rate limiter for wall-clock reads: only every 8th checkpoint touches
  /// the clock, keeping charge points allocation- and syscall-free.
  std::atomic<uint64_t> wall_polls_{0};
  std::atomic<uint8_t> stop_cause_{0};
};

}  // namespace dita

#endif  // DITA_UTIL_QUERY_CONTEXT_H_
