#ifndef DITA_UTIL_STATUS_H_
#define DITA_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace dita {

/// RocksDB-style status object used by all fallible DITA APIs in place of
/// exceptions. A default-constructed Status is OK; error statuses carry a code
/// and a human-readable message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kNotSupported,
    kInternal,
    kDeadlineExceeded,
    kUnavailable,
    kCancelled,
    kResourceExhausted,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  /// A stage or operation exceeded its (virtual-time) deadline.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// A worker or resource is (permanently or transiently) gone.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// The caller cancelled the operation mid-flight (QueryContext). Results
  /// produced before the stop are a valid subset of the full answer.
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  /// A per-query resource budget (candidates, DP cells, scratch bytes) was
  /// exhausted; like kCancelled, any partial result is a subset.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: threshold must be non-negative".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Mirrors absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error status keeps call sites
  /// terse: `return value;` or `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}             // NOLINT
  Result(Status status) : value_(std::move(status)) {}      // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace dita

/// Propagates a non-OK status to the caller.
#define DITA_RETURN_IF_ERROR(expr)               \
  do {                                           \
    ::dita::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // DITA_UTIL_STATUS_H_
