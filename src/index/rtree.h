#ifndef DITA_INDEX_RTREE_H_
#define DITA_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "geom/mbr.h"

namespace dita {

/// A static R-tree bulk-loaded with Sort-Tile-Recursive packing (Leutenegger
/// et al., cited as [25]). DITA uses it for the global index: one tree over
/// the per-partition first-point MBRs and one over the last-point MBRs.
///
/// Entries are (MBR, opaque uint32 value); the tree is immutable once built.
///
/// Storage is flat (DESIGN.md §5c): entries are physically reordered into
/// STR leaf order so every leaf owns a contiguous run of the entry-MBR SoA
/// planes (exlo/eylo/exhi/eyhi), and each level's nodes are laid out in the
/// packing order of the level above so every internal node's children are a
/// contiguous node-id range. Searches are iterative over a reusable
/// thread-local stack; the recursive formulations are kept as *Reference
/// methods, the equivalence oracles for tests. STR sorts tie-break on the
/// item index, so builds are bit-reproducible across runs and platforms.
class RTree {
 public:
  struct Entry {
    MBR mbr;
    uint32_t value = 0;
  };

  RTree() = default;

  /// Builds the tree from `entries` with the given node fanout.
  void Build(std::vector<Entry> entries, size_t fanout = 16);

  /// Appends to `out` the value of every entry whose MBR lies within
  /// distance `tau` of `p` (MinDist(p, mbr) <= tau).
  void SearchWithinDistance(const Point& p, double tau,
                            std::vector<uint32_t>* out) const;

  /// Appends every entry value whose MBR intersects `range`.
  void SearchIntersecting(const MBR& range, std::vector<uint32_t>* out) const;

  /// Recursive reference traversals over the same flat arrays — oracles for
  /// the flattened-search equivalence tests; bit-identical output (content
  /// and order) to the iterative searches.
  void SearchWithinDistanceReference(const Point& p, double tau,
                                     std::vector<uint32_t>* out) const;
  void SearchIntersectingReference(const MBR& range,
                                   std::vector<uint32_t>* out) const;

  size_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// Exact memory footprint of the flat arrays in bytes (for Table 5 /
  /// Table 7 rows).
  size_t ByteSize() const;

  /// FNV-1a hash over every flat array; equal digests mean identical
  /// builds. Used by the determinism tests.
  uint64_t StructureDigest() const;

 private:
  void SearchNodeReference(uint32_t n, const Point* p, double tau,
                           const MBR* range, std::vector<uint32_t>* out) const;

  // --- Entry SoA planes, reordered into leaf-run order. ---
  std::vector<double> exlo_, eylo_, exhi_, eyhi_;
  std::vector<uint32_t> evalue_;

  // --- Node arrays, levels appended bottom-up (root last). ---
  std::vector<double> nxlo_, nylo_, nxhi_, nyhi_;
  /// 1 for leaves. Leaf n owns entries [nfirst_[n], nfirst_[n] + ncount_[n])
  /// of the entry planes; internal n owns child nodes in the same id form.
  std::vector<uint8_t> nleaf_;
  std::vector<uint32_t> nfirst_;
  std::vector<uint32_t> ncount_;

  uint32_t root_ = 0;
  size_t num_entries_ = 0;
};

}  // namespace dita

#endif  // DITA_INDEX_RTREE_H_
