#ifndef DITA_INDEX_RTREE_H_
#define DITA_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "geom/mbr.h"

namespace dita {

/// A static R-tree bulk-loaded with Sort-Tile-Recursive packing (Leutenegger
/// et al., cited as [25]). DITA uses it for the global index: one tree over
/// the per-partition first-point MBRs and one over the last-point MBRs.
///
/// Entries are (MBR, opaque uint32 value); the tree is immutable once built.
class RTree {
 public:
  struct Entry {
    MBR mbr;
    uint32_t value = 0;
  };

  RTree() = default;

  /// Builds the tree from `entries` with the given node fanout.
  void Build(std::vector<Entry> entries, size_t fanout = 16);

  /// Appends to `out` the value of every entry whose MBR lies within
  /// distance `tau` of `p` (MinDist(p, mbr) <= tau).
  void SearchWithinDistance(const Point& p, double tau,
                            std::vector<uint32_t>* out) const;

  /// Appends every entry value whose MBR intersects `range`.
  void SearchIntersecting(const MBR& range, std::vector<uint32_t>* out) const;

  size_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// Approximate memory footprint in bytes (for Table 5 / Table 7 rows).
  size_t ByteSize() const;

 private:
  struct Node {
    MBR mbr;
    bool is_leaf = true;
    /// Children node indices (internal) or entry indices (leaf).
    std::vector<uint32_t> children;
  };

  /// Packs `items` (indices into nodes_ or entries_) into parent nodes by
  /// STR; returns indices of created parents.
  std::vector<uint32_t> PackLevel(const std::vector<uint32_t>& items,
                                  bool items_are_entries, size_t fanout);

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t num_entries_ = 0;
};

}  // namespace dita

#endif  // DITA_INDEX_RTREE_H_
