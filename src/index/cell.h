#ifndef DITA_INDEX_CELL_H_
#define DITA_INDEX_CELL_H_

#include <limits>
#include <vector>

#include "geom/trajectory.h"

namespace dita {

/// Cell-based trajectory compression (§5.3.3 (2), Lemma 5.6): a trajectory is
/// greedily covered by axis-aligned square cells of side `side`; each cell
/// remembers how many points fell into it. The summaries provide a cheap
/// lower bound for DTW that verification applies before the full DP.
struct CellSummary {
  struct Cell {
    Point center;
    int count = 0;
  };
  std::vector<Cell> cells;
  double side = 0.0;

  size_t TotalPoints() const {
    size_t n = 0;
    for (const auto& c : cells) n += static_cast<size_t>(c.count);
    return n;
  }
};

/// Scans the trajectory in order; a point joins the first existing cell that
/// contains it, otherwise it opens a new cell centred on itself (the paper's
/// construction).
CellSummary CompressToCells(const Trajectory& t, double side);

/// Minimum distance between two square cells (0 when they overlap).
double CellDistance(const CellSummary::Cell& a, double side_a,
                    const CellSummary::Cell& b, double side_b);

/// Lemma 5.6: Cell(T, Q) = sum over T's cells of (min distance to any Q cell)
/// * count. DTW(T, Q) >= Cell(T, Q) and >= Cell(Q, T). When `abandon_above`
/// is finite the scan stops as soon as the partial sum exceeds it and
/// returns that partial sum (still a valid lower bound).
double CellLowerBoundDtw(const CellSummary& t, const CellSummary& q,
                         double abandon_above =
                             std::numeric_limits<double>::infinity());

/// Frechet analogue: the max over T's cells of the min distance to Q's cells
/// lower-bounds Frechet(T, Q) (every point of T must align within the
/// threshold to some point of Q). When `abandon_above` is finite the scan
/// stops as soon as the running max (or the hoisted box pre-test) exceeds
/// it; the returned value is still a valid lower bound and the caller's
/// `> abandon_above` decision is unchanged.
double CellLowerBoundFrechet(const CellSummary& t, const CellSummary& q,
                             double abandon_above =
                                 std::numeric_limits<double>::infinity());

}  // namespace dita

#endif  // DITA_INDEX_CELL_H_
