#ifndef DITA_INDEX_PIVOT_H_
#define DITA_INDEX_PIVOT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "geom/trajectory.h"
#include "util/status.h"

namespace dita {

/// Pivot point selection strategies (§4.1.2). Each interior point receives a
/// weight; the K highest-weight points become pivots.
enum class PivotStrategy {
  /// pi - angle(a, b, c) for consecutive points a, b, c: sharp turns win.
  kInflectionPoint,
  /// dist(a, b) for consecutive points: long hops win. The paper's best
  /// performer and our default.
  kNeighborDistance,
  /// max(dist(b, t1), dist(b, tm)): points far from both endpoints win.
  kFirstLastDistance,
};

Result<PivotStrategy> ParsePivotStrategy(const std::string& name);
const char* PivotStrategyName(PivotStrategy s);

/// Selects up to `k` pivot indices from T's interior points {1..m-2} (0-based;
/// the endpoints are excluded per Definition 4.2), returned in increasing
/// index order. Ties break toward the lower index, matching the paper's
/// worked examples. When the trajectory has fewer than k interior points,
/// all interior indices are returned (shorter than k).
std::vector<size_t> SelectPivotIndices(const Trajectory& t, size_t k,
                                       PivotStrategy strategy);

/// A trajectory's indexing sequence TI = (t_1, t_m, t_P1, ..., t_PK) plus the
/// source index of each entry (§4.2.3). Levels are:
///   entry 0 -> first point, entry 1 -> last point, entry 2+i -> pivot i.
/// When the trajectory is shorter than k+2 points, trailing pivot slots
/// repeat the last available pivot (or the last point for 2-point
/// trajectories) so every trajectory has exactly k+2 indexing points; the
/// repeats are harmless for correctness since the bound only accumulates
/// nearest distances.
struct IndexingSequence {
  std::vector<Point> points;
  std::vector<size_t> source_indices;
  /// chargeable[l] is true iff entry l references a source point distinct
  /// from every earlier entry. Padded (repeated) entries are not chargeable:
  /// accumulating their per-level minimum distance would count the same DTW
  /// row twice and break the lower-bound property, so PAMD/OPAMD and the
  /// trie's accumulate/edit modes skip non-chargeable levels.
  std::vector<bool> chargeable;
};

IndexingSequence BuildIndexingSequence(const Trajectory& t, size_t k,
                                       PivotStrategy strategy);

/// Pivot accumulated minimum distance (Definition 4.2, Lemma 4.3):
///   PAMD(T, Q) = dist(t1, q1) + dist(tm, qn) + sum_p min_j dist(p, q_j)
/// computed from T's indexing sequence `ti`. A lower bound of DTW(T, Q):
/// PAMD > tau implies the pair cannot be similar. O(nK) per pair.
double Pamd(const IndexingSequence& ti, const Trajectory& q);

/// Ordered PAMD (Lemma 5.1): like PAMD but each pivot's minimum is taken
/// over the query suffix remaining after earlier pivots trimmed their
/// unreachable prefix under threshold `tau`. Tighter than PAMD; still a
/// valid DTW lower bound whenever OPAMD <= tau is used as the filter test.
double Opamd(const IndexingSequence& ti, const Trajectory& q, double tau);

}  // namespace dita

#endif  // DITA_INDEX_PIVOT_H_
