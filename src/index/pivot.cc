#include "index/pivot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/string_util.h"

namespace dita {

Result<PivotStrategy> ParsePivotStrategy(const std::string& name) {
  const std::string upper = StrToUpper(name);
  if (upper == "INFLECTION" || upper == "INFLECTIONPOINT") {
    return PivotStrategy::kInflectionPoint;
  }
  if (upper == "NEIGHBOR" || upper == "NEIGHBORDISTANCE") {
    return PivotStrategy::kNeighborDistance;
  }
  if (upper == "FIRSTLAST" || upper == "FIRST/LAST" ||
      upper == "FIRSTLASTDISTANCE") {
    return PivotStrategy::kFirstLastDistance;
  }
  return Status::InvalidArgument("unknown pivot strategy: " + name);
}

const char* PivotStrategyName(PivotStrategy s) {
  switch (s) {
    case PivotStrategy::kInflectionPoint:
      return "Inflection";
    case PivotStrategy::kNeighborDistance:
      return "Neighbor";
    case PivotStrategy::kFirstLastDistance:
      return "First/Last";
  }
  return "Unknown";
}

namespace {

/// Angle at vertex b of the triangle a-b-c, in radians [0, pi]. Degenerate
/// (zero-length) edges yield pi, giving zero inflection weight.
double AngleAt(const Point& a, const Point& b, const Point& c) {
  const double ux = a.x - b.x, uy = a.y - b.y;
  const double vx = c.x - b.x, vy = c.y - b.y;
  const double nu = std::sqrt(ux * ux + uy * uy);
  const double nv = std::sqrt(vx * vx + vy * vy);
  if (nu == 0.0 || nv == 0.0) return M_PI;
  double cosine = (ux * vx + uy * vy) / (nu * nv);
  cosine = std::clamp(cosine, -1.0, 1.0);
  return std::acos(cosine);
}

}  // namespace

std::vector<size_t> SelectPivotIndices(const Trajectory& t, size_t k,
                                       PivotStrategy strategy) {
  const size_t m = t.size();
  if (m <= 2 || k == 0) return {};
  const auto& p = t.points();
  const size_t take = std::min(k, m - 2);

  // Online top-`take` selection under (weight desc, interior index asc) —
  // the same total order as sorting every interior weight, without the O(m)
  // scratch vectors and O(m log m) comparator indirection (pivot selection
  // dominates index-build profiles). The buffers persist per thread;
  // extraction runs once per trajectory inside bulk builds.
  thread_local std::vector<double> top_w;
  thread_local std::vector<size_t> top_i;
  top_w.clear();
  top_i.clear();
  auto consider = [&](size_t i, double w) {
    // Indices arrive ascending, so a candidate tying the current minimum
    // loses to it (lower index wins, matching the paper examples).
    if (top_w.size() == take && w <= top_w.back()) return;
    size_t pos = top_w.size();
    while (pos > 0 && w > top_w[pos - 1]) --pos;
    top_w.insert(top_w.begin() + static_cast<long>(pos), w);
    top_i.insert(top_i.begin() + static_cast<long>(pos), i);
    if (top_w.size() > take) {
      top_w.pop_back();
      top_i.pop_back();
    }
  };
  switch (strategy) {
    case PivotStrategy::kInflectionPoint:
      for (size_t i = 1; i + 1 < m; ++i) {
        consider(i - 1, M_PI - AngleAt(p[i - 1], p[i], p[i + 1]));
      }
      break;
    // The distance strategies rank by squared distance: sqrt is monotone,
    // so the selected pivots are the same, and exactly-equal distances
    // (ubiquitous under fixed-step GPS traces) still tie toward the lower
    // index — the squares are then equal too.
    case PivotStrategy::kNeighborDistance:
      for (size_t i = 1; i + 1 < m; ++i) {
        consider(i - 1, PointDistanceSquared(p[i - 1], p[i]));
      }
      break;
    case PivotStrategy::kFirstLastDistance:
      for (size_t i = 1; i + 1 < m; ++i) {
        consider(i - 1, std::max(PointDistanceSquared(p[i], p[0]),
                                 PointDistanceSquared(p[i], p[m - 1])));
      }
      break;
  }
  std::vector<size_t> picked(top_i.begin(), top_i.end());
  for (size_t& idx : picked) idx += 1;  // interior offset
  std::sort(picked.begin(), picked.end());
  return picked;
}

IndexingSequence BuildIndexingSequence(const Trajectory& t, size_t k,
                                       PivotStrategy strategy) {
  IndexingSequence seq;
  if (t.empty()) return seq;
  const size_t m = t.size();
  seq.points.reserve(k + 2);
  seq.source_indices.reserve(k + 2);
  seq.points.push_back(t.front());
  seq.source_indices.push_back(0);
  seq.points.push_back(t.back());
  seq.source_indices.push_back(m - 1);

  std::vector<size_t> pivots = SelectPivotIndices(t, k, strategy);
  for (size_t idx : pivots) {
    seq.points.push_back(t[idx]);
    seq.source_indices.push_back(idx);
  }
  // Pad to exactly k pivots (§4.1.2 fixes K for every trajectory).
  while (seq.points.size() < k + 2) {
    const size_t last = seq.source_indices.size() > 2
                            ? seq.source_indices.back()
                            : m - 1;
    seq.points.push_back(t[last]);
    seq.source_indices.push_back(last);
  }
  seq.chargeable.resize(seq.source_indices.size());
  for (size_t l = 0; l < seq.source_indices.size(); ++l) {
    bool fresh = true;
    for (size_t prev = 0; prev < l; ++prev) {
      if (seq.source_indices[prev] == seq.source_indices[l]) {
        fresh = false;
        break;
      }
    }
    seq.chargeable[l] = fresh;
  }
  return seq;
}

double Pamd(const IndexingSequence& ti, const Trajectory& q) {
  if (ti.points.empty() || q.empty()) return 0.0;
  const auto& pts = q.points();
  double sum = PointDistance(ti.points[0], pts.front());
  if (ti.chargeable[1]) sum += PointDistance(ti.points[1], pts.back());
  for (size_t p = 2; p < ti.points.size(); ++p) {
    if (!ti.chargeable[p]) continue;
    double best = std::numeric_limits<double>::infinity();
    for (const Point& qj : pts) {
      best = std::min(best, PointDistance(ti.points[p], qj));
    }
    sum += best;
  }
  return sum;
}

double Opamd(const IndexingSequence& ti, const Trajectory& q, double tau) {
  if (ti.points.empty() || q.empty()) return 0.0;
  const auto& pts = q.points();
  double sum = PointDistance(ti.points[0], pts.front());
  if (ti.chargeable[1]) sum += PointDistance(ti.points[1], pts.back());
  size_t suffix = 0;
  for (size_t p = 2; p < ti.points.size(); ++p) {
    if (!ti.chargeable[p]) continue;
    const double remaining = tau - sum;
    double best = std::numeric_limits<double>::infinity();
    size_t first_within = pts.size();
    for (size_t j = suffix; j < pts.size(); ++j) {
      const double d = PointDistance(ti.points[p], pts[j]);
      best = std::min(best, d);
      if (d <= remaining && first_within == pts.size()) first_within = j;
    }
    if (first_within < pts.size()) suffix = first_within;
    sum += best;
    if (sum > tau) break;  // already disproven; callers only test vs tau
  }
  return sum;
}

}  // namespace dita
