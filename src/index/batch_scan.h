#ifndef DITA_INDEX_BATCH_SCAN_H_
#define DITA_INDEX_BATCH_SCAN_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#if defined(__x86_64__) && defined(__GNUC__)
#define DITA_BATCH_SCAN_AVX2 1
#include <immintrin.h>
#else
#define DITA_BATCH_SCAN_AVX2 0
#endif

namespace dita {

/// The suffix-scan primitive behind TrieIndex's pivot-level node tests,
/// factored out of SuffixMinDist so the batched traversal can run it over
/// SoA query-point arrays with a vectorized kernel (DESIGN.md §5f).
///
/// Semantics (shared by every implementation here, and by the scalar loop
/// inside TrieIndex::SuffixMinDist):
///   - best_sq = min over j in [begin, end) of PlaneMinDistSq(rect, p_j);
///   - first_within = the smallest j whose distance passes the squared
///     pre-filter (dsq <= limit_sq_ub) AND the exact sqrt re-test
///     (sqrt(dsq) <= limit); `end` when no point qualifies;
///   - the scan may stop early once best_sq == 0 and first_within is set
///     (neither output can change after that point).
///
/// Bit-identity with the scalar loop is a hard contract — the batched
/// traversal must emit exactly the single-query candidate sets:
///   - each element's dsq is computed with the same operation sequence
///     (sub, max-with-zero, mul, add); the AVX2 body uses explicit
///     intrinsics, which the compiler may not contract into FMA, so the
///     rounding of every intermediate matches the scalar build;
///   - min over doubles (no NaNs here: inputs are finite coordinates) is
///     associative and commutative, so folding four lanes at the end gives
///     the same minimum as the scalar left-to-right fold;
///   - the sqrt re-test runs in scalar std::sqrt (correctly rounded) on the
///     candidate lanes in index order, so first_within resolves to the same
///     index the scalar loop finds.
struct SuffixScanResult {
  double best_sq;
  size_t first_within;
};

/// Scalar reference kernel; mirrors the loop body of
/// TrieIndex::SuffixMinDist op for op.
inline SuffixScanResult SuffixScanScalar(const double* xs, const double* ys,
                                         size_t begin, size_t end, double xlo,
                                         double ylo, double xhi, double yhi,
                                         double limit, double limit_sq_ub) {
  double best_sq = std::numeric_limits<double>::infinity();
  size_t first_within = end;
  for (size_t j = begin; j < end; ++j) {
    const double dx = std::max({xlo - xs[j], 0.0, xs[j] - xhi});
    const double dy = std::max({ylo - ys[j], 0.0, ys[j] - yhi});
    const double dsq = dx * dx + dy * dy;
    best_sq = std::min(best_sq, dsq);
    if (first_within == end && dsq <= limit_sq_ub && std::sqrt(dsq) <= limit) {
      first_within = j;
    }
    if (best_sq == 0.0 && first_within != end) break;
  }
  return {best_sq, first_within};
}

#if DITA_BATCH_SCAN_AVX2
/// Four points per iteration. Compiled with a per-function target attribute
/// so the translation unit keeps its baseline ISA; callers must gate on
/// __builtin_cpu_supports("avx2") (SuffixScan below does).
__attribute__((target("avx2"))) inline SuffixScanResult SuffixScanAvx2(
    const double* xs, const double* ys, size_t begin, size_t end, double xlo,
    double ylo, double xhi, double yhi, double limit, double limit_sq_ub) {
  double best_sq = std::numeric_limits<double>::infinity();
  size_t first_within = end;
  size_t j = begin;
  bool done = false;
  if (j + 4 <= end) {
    const __m256d vxlo = _mm256_set1_pd(xlo);
    const __m256d vylo = _mm256_set1_pd(ylo);
    const __m256d vxhi = _mm256_set1_pd(xhi);
    const __m256d vyhi = _mm256_set1_pd(yhi);
    const __m256d vzero = _mm256_setzero_pd();
    const __m256d vub = _mm256_set1_pd(limit_sq_ub);
    __m256d vbest = _mm256_set1_pd(std::numeric_limits<double>::infinity());
    for (; j + 4 <= end; j += 4) {
      const __m256d px = _mm256_loadu_pd(xs + j);
      const __m256d py = _mm256_loadu_pd(ys + j);
      const __m256d dx = _mm256_max_pd(
          _mm256_max_pd(_mm256_sub_pd(vxlo, px), vzero), _mm256_sub_pd(px, vxhi));
      const __m256d dy = _mm256_max_pd(
          _mm256_max_pd(_mm256_sub_pd(vylo, py), vzero), _mm256_sub_pd(py, vyhi));
      const __m256d dsq =
          _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
      vbest = _mm256_min_pd(vbest, dsq);
      if (first_within == end) {
        const int within =
            _mm256_movemask_pd(_mm256_cmp_pd(dsq, vub, _CMP_LE_OQ));
        if (within != 0) {
          alignas(32) double lanes[4];
          _mm256_store_pd(lanes, dsq);
          for (int l = 0; l < 4; ++l) {
            if (((within >> l) & 1) != 0 && std::sqrt(lanes[l]) <= limit) {
              first_within = j + l;
              break;
            }
          }
        }
      }
      if (first_within != end &&
          _mm256_movemask_pd(_mm256_cmp_pd(dsq, vzero, _CMP_EQ_OQ)) != 0) {
        done = true;  // a zero joined the min; nothing left to learn
        break;
      }
    }
    alignas(32) double fold[4];
    _mm256_store_pd(fold, vbest);
    best_sq = std::min(std::min(fold[0], fold[1]), std::min(fold[2], fold[3]));
  }
  if (!done) {
    for (; j < end; ++j) {
      const double dx = std::max({xlo - xs[j], 0.0, xs[j] - xhi});
      const double dy = std::max({ylo - ys[j], 0.0, ys[j] - yhi});
      const double dsq = dx * dx + dy * dy;
      best_sq = std::min(best_sq, dsq);
      if (first_within == end && dsq <= limit_sq_ub &&
          std::sqrt(dsq) <= limit) {
        first_within = j;
      }
      if (best_sq == 0.0 && first_within != end) break;
    }
  }
  return {best_sq, first_within};
}
#endif  // DITA_BATCH_SCAN_AVX2

/// Sibling-sweep distance kernel: one test rectangle (a query's front/back
/// point, its current suffix MBR, or a group union rect) against `cnt`
/// consecutive trie children whose planes live in the SoA arrays
/// xlo/ylo/xhi/yhi (pass base pointers offset to the first child). Writes
///   d_out[i] = sqrt(max(xlo[i]-ax, 0, bx-xhi[i])^2
///                 + max(ylo[i]-ay, 0, by-yhi[i])^2).
/// Point tests pass ax=bx=px (and ay=by=py); rect tests pass the rect's hi
/// corner as (ax,ay) and lo corner as (bx,by) — exactly the operand order
/// of the scalar max({lo-a, 0, b-hi}) forms in TrieIndex's node tests, so
/// with correctly-rounded _mm256_sqrt_pd every lane is bit-identical to the
/// scalar computation.
inline void ChildPlaneDistsScalar(const double* xlo, const double* ylo,
                                  const double* xhi, const double* yhi,
                                  size_t cnt, double ax, double ay, double bx,
                                  double by, double* d_out) {
  for (size_t i = 0; i < cnt; ++i) {
    const double dx = std::max({xlo[i] - ax, 0.0, bx - xhi[i]});
    const double dy = std::max({ylo[i] - ay, 0.0, by - yhi[i]});
    d_out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

#if DITA_BATCH_SCAN_AVX2
__attribute__((target("avx2"))) inline void ChildPlaneDistsAvx2(
    const double* xlo, const double* ylo, const double* xhi, const double* yhi,
    size_t cnt, double ax, double ay, double bx, double by, double* d_out) {
  const __m256d vax = _mm256_set1_pd(ax);
  const __m256d vay = _mm256_set1_pd(ay);
  const __m256d vbx = _mm256_set1_pd(bx);
  const __m256d vby = _mm256_set1_pd(by);
  const __m256d vzero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= cnt; i += 4) {
    const __m256d dx = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(xlo + i), vax), vzero),
        _mm256_sub_pd(vbx, _mm256_loadu_pd(xhi + i)));
    const __m256d dy = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(ylo + i), vay), vzero),
        _mm256_sub_pd(vby, _mm256_loadu_pd(yhi + i)));
    _mm256_storeu_pd(
        d_out + i,
        _mm256_sqrt_pd(
            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy))));
  }
  for (; i < cnt; ++i) {
    const double dx = std::max({xlo[i] - ax, 0.0, bx - xhi[i]});
    const double dy = std::max({ylo[i] - ay, 0.0, by - yhi[i]});
    d_out[i] = std::sqrt(dx * dx + dy * dy);
  }
}
#endif  // DITA_BATCH_SCAN_AVX2

inline void ChildPlaneDists(const double* xlo, const double* ylo,
                            const double* xhi, const double* yhi, size_t cnt,
                            double ax, double ay, double bx, double by,
                            double* d_out) {
#if DITA_BATCH_SCAN_AVX2
  static const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;
  if (kHaveAvx2) {
    ChildPlaneDistsAvx2(xlo, ylo, xhi, yhi, cnt, ax, ay, bx, by, d_out);
    return;
  }
#endif
  ChildPlaneDistsScalar(xlo, ylo, xhi, yhi, cnt, ax, ay, bx, by, d_out);
}

/// Runtime-dispatched scan: AVX2 when the CPU has it, scalar otherwise.
inline SuffixScanResult SuffixScan(const double* xs, const double* ys,
                                   size_t begin, size_t end, double xlo,
                                   double ylo, double xhi, double yhi,
                                   double limit, double limit_sq_ub) {
#if DITA_BATCH_SCAN_AVX2
  static const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;
  if (kHaveAvx2) {
    return SuffixScanAvx2(xs, ys, begin, end, xlo, ylo, xhi, yhi, limit,
                          limit_sq_ub);
  }
#endif
  return SuffixScanScalar(xs, ys, begin, end, xlo, ylo, xhi, yhi, limit,
                          limit_sq_ub);
}

}  // namespace dita

#endif  // DITA_INDEX_BATCH_SCAN_H_
