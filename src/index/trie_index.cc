#include "index/trie_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "index/soa_planes.h"
#include "index/str_tile.h"
#include "util/logging.h"

namespace dita {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Status TrieIndex::Build(std::vector<Trajectory> trajectories,
                        const Options& options, ThreadPool* pool,
                        double* offloaded_seconds) {
  if (options.align_fanout < 2 || options.pivot_fanout < 2) {
    return Status::InvalidArgument("trie fanouts must be at least 2");
  }
  if (options.leaf_capacity < 1) {
    return Status::InvalidArgument("leaf capacity must be at least 1");
  }
  for (const Trajectory& t : trajectories) {
    if (t.empty()) return Status::InvalidArgument("empty trajectory in build set");
  }
  options_ = options;
  trajectories_ = std::move(trajectories);
  double off = 0.0;

  // Indexing-sequence extraction is independent per trajectory; chunk it
  // across the pool. Every chunk writes only its own slots, so the result
  // is position-for-position identical to the serial loop.
  sequences_.assign(trajectories_.size(), IndexingSequence{});
  off += ThreadPool::ParallelFor(
      pool, trajectories_.size(), /*min_parallel=*/256,
      [this](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          sequences_[i] = BuildIndexingSequence(
              trajectories_[i], options_.num_pivots, options_.strategy);
        }
      });

  const int num_levels = static_cast<int>(options_.num_pivots) + 2;

  xlo_.clear(); ylo_.clear(); xhi_.clear(); yhi_.clear();
  level_.clear();
  first_child_.clear(); child_count_.clear();
  items_begin_.clear(); items_end_.clear();
  src_lo_.clear(); src_hi_.clear();
  chargeable_.clear();
  items_.clear();

  auto add_node = [this](int32_t level) -> uint32_t {
    const uint32_t idx = static_cast<uint32_t>(level_.size());
    xlo_.push_back(kInf);
    ylo_.push_back(kInf);
    xhi_.push_back(-kInf);
    yhi_.push_back(-kInf);
    level_.push_back(level);
    first_child_.push_back(0);
    child_count_.push_back(0);
    items_begin_.push_back(0);
    items_end_.push_back(0);
    src_lo_.push_back(0);
    src_hi_.push_back(0);
    chargeable_.push_back(1);
    return idx;
  };

  // BFS construction: the work list is processed FIFO, so each node's
  // children are appended consecutively — the CSR layout needs only a
  // (first_child, count) pair per node. Leaf member lists are stashed per
  // node and laid out into the global items array in DFS order afterwards.
  struct Pending {
    uint32_t node;
    int level;
    std::vector<uint32_t> members;
  };
  std::vector<Pending> queue;
  std::vector<std::vector<uint32_t>> leaf_members;
  leaf_members.emplace_back();
  add_node(/*level=*/-1);  // root
  {
    std::vector<uint32_t> all(trajectories_.size());
    for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
    queue.push_back(Pending{0, -1, std::move(all)});
  }

  for (size_t head = 0; head < queue.size(); ++head) {
    Pending cur = std::move(queue[head]);
    const int child_level = cur.level + 1;
    // Leaf when all indexing levels are consumed or the population is small.
    if (child_level >= num_levels ||
        cur.members.size() <= options_.leaf_capacity) {
      leaf_members[cur.node] = std::move(cur.members);
      continue;
    }

    const size_t fanout =
        child_level < 2 ? options_.align_fanout : options_.pivot_fanout;
    auto level_point = [&](uint32_t traj_pos) -> Point {
      return sequences_[traj_pos].points[static_cast<size_t>(child_level)];
    };

    auto groups =
        StrTile(std::move(cur.members), level_point, fanout, pool, &off);
    first_child_[cur.node] = static_cast<uint32_t>(level_.size());
    child_count_[cur.node] = static_cast<uint32_t>(groups.size());
    for (auto& group : groups) {
      const uint32_t child = add_node(child_level);
      leaf_members.emplace_back();
      uint32_t lo = std::numeric_limits<uint32_t>::max();
      uint32_t hi = 0;
      for (uint32_t pos : group) {
        const Point p = level_point(pos);
        xlo_[child] = std::min(xlo_[child], p.x);
        ylo_[child] = std::min(ylo_[child], p.y);
        xhi_[child] = std::max(xhi_[child], p.x);
        yhi_[child] = std::max(yhi_[child], p.y);
        const uint32_t src = static_cast<uint32_t>(
            sequences_[pos].source_indices[static_cast<size_t>(child_level)]);
        lo = std::min(lo, src);
        hi = std::max(hi, src);
        if (!sequences_[pos].chargeable[static_cast<size_t>(child_level)]) {
          chargeable_[child] = 0;
        }
      }
      src_lo_[child] = lo;
      src_hi_[child] = hi;
      queue.push_back(Pending{child, child_level, std::move(group)});
    }
  }

  // DFS pass assigns every leaf an items span in traversal-emission order,
  // so the search appends strictly increasing ranges of one flat array.
  items_.reserve(trajectories_.size());
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    if (child_count_[n] == 0) {
      items_begin_[n] = static_cast<uint32_t>(items_.size());
      items_.insert(items_.end(), leaf_members[n].begin(), leaf_members[n].end());
      items_end_[n] = static_cast<uint32_t>(items_.size());
      continue;
    }
    for (uint32_t c = first_child_[n] + child_count_[n];
         c-- > first_child_[n];) {
      stack.push_back(c);
    }
  }

  // Subtree membership counts, for the funnel's per-level pruning tallies.
  // BFS numbering guarantees every child id exceeds its parent's, so one
  // reverse sweep folds leaf span lengths up to the root.
  subtree_count_.assign(level_.size(), 0);
  for (uint32_t n = static_cast<uint32_t>(level_.size()); n-- > 0;) {
    if (child_count_[n] == 0) {
      subtree_count_[n] = items_end_[n] - items_begin_[n];
    } else {
      uint32_t total = 0;
      for (uint32_t c = first_child_[n]; c < first_child_[n] + child_count_[n];
           ++c) {
        total += subtree_count_[c];
      }
      subtree_count_[n] = total;
    }
  }

  if (offloaded_seconds != nullptr) *offloaded_seconds += off;
  return Status::OK();
}

double TrieIndex::SuffixMinDist(const Trajectory& q, size_t suffix_start,
                                uint32_t n, double limit,
                                size_t* next_suffix_start) const {
  const auto& pts = q.points();
  const double xlo = xlo_[n], ylo = ylo_[n], xhi = xhi_[n], yhi = yhi_[n];
  // The scan minimises squared distances and takes one sqrt at the end —
  // bit-identical to a per-point sqrt (see PlaneMinDistSq) but off the
  // loop-carried min. The within-limit test stays exact: the squared
  // pre-filter over-covers by a few ulps, and the sqrt re-test settles the
  // boundary cases it admits.
  double best_sq = kInf;
  size_t first_within = pts.size();
  const double limit_sq_ub = limit * limit * (1.0 + 1e-14);
  for (size_t j = suffix_start; j < pts.size(); ++j) {
    const double dsq = PlaneMinDistSq(xlo, ylo, xhi, yhi, pts[j]);
    best_sq = std::min(best_sq, dsq);
    if (first_within == pts.size() && dsq <= limit_sq_ub &&
        std::sqrt(dsq) <= limit) {
      first_within = j;
    }
    if (best_sq == 0.0 && first_within != pts.size()) break;  // cannot improve
  }
  // Lemma 5.1: query points before the first one within `limit` of this
  // pivot MBR cannot align to this pivot nor to any later one.
  if (next_suffix_start != nullptr) {
    *next_suffix_start = first_within == pts.size() ? suffix_start : first_within;
  }
  return std::sqrt(best_sq);
}

bool TrieIndex::TestNode(uint32_t n, const SearchSpec& spec,
                         const std::vector<MBR>& suffix_mbrs, double* budget,
                         uint32_t* suffix_start) const {
  const int32_t level = level_[n];
  if (level < 0) return true;  // root
  const Trajectory& q = *spec.query;
  const double xlo = xlo_[n], ylo = ylo_[n], xhi = xhi_[n], yhi = yhi_[n];

  switch (spec.mode) {
    case PruneMode::kAccumulate: {
      // Non-chargeable levels (padded repeats of an earlier source point)
      // must not contribute to the accumulated bound.
      if (!chargeable_[n]) return true;
      if (spec.erp_gap != nullptr) {
        // ERP: a row may match the gap point; no alignment, no trimming.
        double dsq = PlaneMinDistSq(xlo, ylo, xhi, yhi, *spec.erp_gap);
        for (const Point& p : q.points()) {
          if (dsq == 0.0) break;
          dsq = std::min(dsq, PlaneMinDistSq(xlo, ylo, xhi, yhi, p));
        }
        const double d = std::sqrt(dsq);
        if (d > *budget) return false;
        *budget -= d;
        return true;
      }
      double d;
      if (level == 0) {
        d = PlaneMinDist(xlo, ylo, xhi, yhi, q.front());
      } else if (level == 1) {
        d = PlaneMinDist(xlo, ylo, xhi, yhi, q.back());
      } else {
        // O(1) pre-test before the O(n) suffix scan.
        if (PlaneMinDistRect(xlo, ylo, xhi, yhi, suffix_mbrs[*suffix_start]) >
            *budget) {
          return false;
        }
        size_t next = *suffix_start;
        d = SuffixMinDist(q, *suffix_start, n, *budget, &next);
        *suffix_start = static_cast<uint32_t>(next);
      }
      if (d > *budget) return false;
      *budget -= d;
      return true;
    }
    case PruneMode::kMax: {
      double d;
      if (level == 0) {
        d = PlaneMinDist(xlo, ylo, xhi, yhi, q.front());
      } else if (level == 1) {
        d = PlaneMinDist(xlo, ylo, xhi, yhi, q.back());
      } else {
        if (PlaneMinDistRect(xlo, ylo, xhi, yhi, suffix_mbrs[*suffix_start]) >
            *budget) {
          return false;
        }
        size_t next = *suffix_start;
        const double sd = SuffixMinDist(q, *suffix_start, n, *budget, &next);
        *suffix_start = static_cast<uint32_t>(next);
        d = sd;
      }
      return d <= *budget;  // budget stays tau for max-style distances
    }
    case PruneMode::kEditCount: {
      // A level whose indexing point cannot match any (eligible) query
      // point within epsilon forces at least one edit (Appendix A).
      double dsq = kInf;
      size_t j_lo = 0;
      size_t j_hi = q.size();
      if (level >= 2 && spec.lcss_delta >= 0) {
        // LCSS index constraint: pivot at source index s may only match
        // query indices within delta of it.
        const size_t delta = static_cast<size_t>(spec.lcss_delta);
        const size_t lo = src_lo_[n];
        j_lo = lo > delta ? lo - delta : 0;
        j_hi = std::min(q.size(), static_cast<size_t>(src_hi_[n]) + delta + 1);
      }
      for (size_t j = j_lo; j < j_hi; ++j) {
        dsq = std::min(dsq, PlaneMinDistSq(xlo, ylo, xhi, yhi, q[j]));
        if (dsq == 0.0) break;
      }
      if (std::sqrt(dsq) > spec.epsilon && chargeable_[n]) *budget -= 1.0;
      return *budget >= 0.0;
    }
  }
  return true;
}

void TrieIndex::CollectCandidates(const SearchSpec& spec,
                                  std::vector<uint32_t>* out,
                                  ProbeStats* stats) const {
  DITA_CHECK(spec.query != nullptr);
  if (trajectories_.empty() || spec.query->empty()) return;
  double budget = spec.tau;
  if (spec.mode == PruneMode::kEditCount) budget = std::floor(spec.tau);
  // suffix_mbrs[j] covers query points [j, n). All traversal buffers are
  // reused across calls on the same thread: CollectCandidates runs once per
  // (query, partition) inside hot search/join loops, and per-call
  // allocations show up in filter-dominated profiles.
  const auto& pts = spec.query->points();
  static thread_local std::vector<MBR> suffix_mbrs;
  suffix_mbrs.assign(pts.size() + 1, MBR{});
  for (size_t j = pts.size(); j-- > 0;) {
    suffix_mbrs[j] = suffix_mbrs[j + 1];
    suffix_mbrs[j].Expand(pts[j]);
  }

  // Iterative DFS. A frame is a node whose own test passed; popping an
  // internal node scans its children — a contiguous id range, so the
  // per-sibling MBR tests walk the SoA planes sequentially — and pushes the
  // survivors in reverse so emission order matches the recursive reference.
  static thread_local std::vector<Frame> stack;
  static thread_local std::vector<Frame> survivors;
  stack.clear();
  stack.push_back(Frame{0, 0, budget});
  // Stride between QueryContext checkpoints, in node visits. Large enough
  // that the counter update is invisible next to the MBR tests it meters,
  // small enough to bound time-to-stop (bench_cancellation measures it).
  constexpr uint32_t kCheckStride = 256;
  uint32_t visits_since_check = 0;
  while (!stack.empty()) {
    if (spec.ctx != nullptr && visits_since_check >= kCheckStride) {
      if (spec.ctx->CheckPoint(visits_since_check)) return;
      visits_since_check = 0;
    }
    const Frame f = stack.back();
    stack.pop_back();
    const uint32_t cnt = child_count_[f.node];
    if (cnt == 0) {
      const uint32_t span =
          items_end_[f.node] - items_begin_[f.node];
      if (spec.ctx != nullptr && spec.ctx->ChargeCandidates(span)) return;
      out->insert(out->end(), items_.begin() + items_begin_[f.node],
                  items_.begin() + items_end_[f.node]);
      continue;
    }
    const uint32_t fc = first_child_[f.node];
    survivors.clear();
    visits_since_check += cnt;
    for (uint32_t c = fc; c < fc + cnt; ++c) {
      double b = f.budget;
      uint32_t s = f.suffix_start;
      const bool pass = TestNode(c, spec, suffix_mbrs, &b, &s);
      if (stats != nullptr) {
        ++stats->nodes_visited;
        if (!pass) {
          ++stats->nodes_pruned;
          stats->pruned_members[static_cast<size_t>(level_[c])] +=
              subtree_count_[c];
        }
      }
      if (pass) survivors.push_back(Frame{c, s, b});
    }
    for (size_t i = survivors.size(); i-- > 0;) stack.push_back(survivors[i]);
  }
  // Flush the sub-stride remainder so ops accounting is exact per traversal:
  // without this, a selective query (< kCheckStride visits) charges nothing,
  // leaving CancelAfterOps triggers unreachable and time-to-stop unmeasured.
  if (spec.ctx != nullptr && visits_since_check > 0) {
    spec.ctx->CheckPoint(visits_since_check);
  }
}

void TrieIndex::CollectCandidatesReference(const SearchSpec& spec,
                                           std::vector<uint32_t>* out) const {
  DITA_CHECK(spec.query != nullptr);
  if (trajectories_.empty() || spec.query->empty()) return;
  double budget = spec.tau;
  if (spec.mode == PruneMode::kEditCount) budget = std::floor(spec.tau);
  const auto& pts = spec.query->points();
  std::vector<MBR> suffix_mbrs(pts.size() + 1, MBR{});
  for (size_t j = pts.size(); j-- > 0;) {
    suffix_mbrs[j] = suffix_mbrs[j + 1];
    suffix_mbrs[j].Expand(pts[j]);
  }
  SearchNodeReference(0, spec, suffix_mbrs, budget, /*suffix_start=*/0, out);
}

void TrieIndex::SearchNodeReference(uint32_t n, const SearchSpec& spec,
                                    const std::vector<MBR>& suffix_mbrs,
                                    double budget, uint32_t suffix_start,
                                    std::vector<uint32_t>* out) const {
  if (!TestNode(n, spec, suffix_mbrs, &budget, &suffix_start)) return;
  const uint32_t cnt = child_count_[n];
  if (cnt == 0) {
    out->insert(out->end(), items_.begin() + items_begin_[n],
                items_.begin() + items_end_[n]);
    return;
  }
  for (uint32_t c = first_child_[n]; c < first_child_[n] + cnt; ++c) {
    SearchNodeReference(c, spec, suffix_mbrs, budget, suffix_start, out);
  }
}

size_t TrieIndex::ByteSize() const {
  const size_t n = level_.size();
  size_t bytes = 4 * n * sizeof(double)       // xlo/ylo/xhi/yhi planes
                 + n * sizeof(int32_t)        // level
                 + 6 * n * sizeof(uint32_t)   // child/items spans, src range
                 + n * sizeof(uint8_t)        // chargeable mask
                 + items_.size() * sizeof(uint32_t);
  for (const IndexingSequence& s : sequences_) {
    bytes += s.points.size() * sizeof(Point) +
             s.source_indices.size() * sizeof(size_t) +
             (s.chargeable.size() + 7) / 8;  // packed bitmask
  }
  return bytes;
}

uint64_t TrieIndex::StructureDigest() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix_bytes = [&h](const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  auto mix = [&](const auto& vec) {
    const uint64_t n = vec.size();
    mix_bytes(&n, sizeof(n));
    if (!vec.empty()) mix_bytes(vec.data(), vec.size() * sizeof(vec[0]));
  };
  mix(xlo_); mix(ylo_); mix(xhi_); mix(yhi_);
  mix(level_);
  mix(first_child_); mix(child_count_);
  mix(items_begin_); mix(items_end_);
  mix(src_lo_); mix(src_hi_);
  mix(chargeable_);
  mix(items_);
  return h;
}

}  // namespace dita
