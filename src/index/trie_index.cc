#include "index/trie_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "index/batch_scan.h"
#include "index/soa_planes.h"
#include "index/str_tile.h"
#include "util/logging.h"

namespace dita {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Stride between QueryContext checkpoints, in node visits. Large enough
/// that the counter update is invisible next to the MBR tests it meters,
/// small enough to bound time-to-stop (bench_cancellation measures it).
constexpr uint32_t kCheckStride = 256;

template <typename T>
size_t VecBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

template <typename T>
void FreeVec(std::vector<T>& v) {
  std::vector<T>().swap(v);
}
}  // namespace

TrieIndex::Scratch& TrieIndex::Scratch::ThreadLocal() {
  static thread_local Scratch s;
  return s;
}

size_t TrieIndex::Scratch::ByteSize() const {
  return VecBytes(suffix_mbrs) + VecBytes(stack) + VecBytes(survivors) +
         VecBytes(batch_mbrs) + VecBytes(whole_mbrs) + VecBytes(bstack) +
         VecBytes(bsurvivors) + VecBytes(states) + VecBytes(tmp_states) +
         VecBytes(frame_states) + VecBytes(mbr_off) + VecBytes(order) +
         VecBytes(visits) + VecBytes(qx) + VecBytes(qy) + VecBytes(refs) +
         VecBytes(keys) + VecBytes(cdist) + VecBytes(dsigs);
}

void TrieIndex::Scratch::Release() {
  FreeVec(suffix_mbrs);
  FreeVec(stack);
  FreeVec(survivors);
  FreeVec(batch_mbrs);
  FreeVec(whole_mbrs);
  FreeVec(bstack);
  FreeVec(bsurvivors);
  FreeVec(states);
  FreeVec(tmp_states);
  FreeVec(frame_states);
  FreeVec(mbr_off);
  FreeVec(order);
  FreeVec(visits);
  FreeVec(qx);
  FreeVec(qy);
  FreeVec(refs);
  FreeVec(keys);
  FreeVec(cdist);
  FreeVec(dsigs);
}

Status TrieIndex::Build(std::vector<Trajectory> trajectories,
                        const Options& options, ThreadPool* pool,
                        double* offloaded_seconds) {
  if (options.align_fanout < 2 || options.pivot_fanout < 2) {
    return Status::InvalidArgument("trie fanouts must be at least 2");
  }
  if (options.leaf_capacity < 1) {
    return Status::InvalidArgument("leaf capacity must be at least 1");
  }
  for (const Trajectory& t : trajectories) {
    if (t.empty()) return Status::InvalidArgument("empty trajectory in build set");
  }
  options_ = options;
  trajectories_ = std::move(trajectories);
  double off = 0.0;

  // Fan out only when every pool thread gets enough items to amortize the
  // dispatch; below the threshold the serial path is strictly faster (the
  // build is identical either way, so this is purely a scheduling choice).
  ThreadPool* build_pool = pool;
  if (pool != nullptr &&
      trajectories_.size() < kMinBuildItemsPerThread * pool->num_threads()) {
    build_pool = nullptr;
  }

  // Indexing-sequence extraction is independent per trajectory; chunk it
  // across the pool. Every chunk writes only its own slots, so the result
  // is position-for-position identical to the serial loop.
  sequences_.assign(trajectories_.size(), IndexingSequence{});
  off += ThreadPool::ParallelFor(
      build_pool, trajectories_.size(), /*min_parallel=*/256,
      [this](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          sequences_[i] = BuildIndexingSequence(
              trajectories_[i], options_.num_pivots, options_.strategy);
        }
      });

  const int num_levels = static_cast<int>(options_.num_pivots) + 2;

  xlo_.clear(); ylo_.clear(); xhi_.clear(); yhi_.clear();
  level_.clear();
  first_child_.clear(); child_count_.clear();
  items_begin_.clear(); items_end_.clear();
  src_lo_.clear(); src_hi_.clear();
  chargeable_.clear();
  items_.clear();

  auto add_node = [this](int32_t level) -> uint32_t {
    const uint32_t idx = static_cast<uint32_t>(level_.size());
    xlo_.push_back(kInf);
    ylo_.push_back(kInf);
    xhi_.push_back(-kInf);
    yhi_.push_back(-kInf);
    level_.push_back(level);
    first_child_.push_back(0);
    child_count_.push_back(0);
    items_begin_.push_back(0);
    items_end_.push_back(0);
    src_lo_.push_back(0);
    src_hi_.push_back(0);
    chargeable_.push_back(1);
    return idx;
  };

  // BFS construction: the work list is processed FIFO, so each node's
  // children are appended consecutively — the CSR layout needs only a
  // (first_child, count) pair per node. Leaf member lists are stashed per
  // node and laid out into the global items array in DFS order afterwards.
  struct Pending {
    uint32_t node;
    int level;
    std::vector<uint32_t> members;
  };
  std::vector<Pending> queue;
  std::vector<std::vector<uint32_t>> leaf_members;
  leaf_members.emplace_back();
  add_node(/*level=*/-1);  // root
  {
    std::vector<uint32_t> all(trajectories_.size());
    for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
    queue.push_back(Pending{0, -1, std::move(all)});
  }

  for (size_t head = 0; head < queue.size(); ++head) {
    Pending cur = std::move(queue[head]);
    const int child_level = cur.level + 1;
    // Leaf when all indexing levels are consumed or the population is small.
    if (child_level >= num_levels ||
        cur.members.size() <= options_.leaf_capacity) {
      leaf_members[cur.node] = std::move(cur.members);
      continue;
    }

    const size_t fanout =
        child_level < 2 ? options_.align_fanout : options_.pivot_fanout;
    auto level_point = [&](uint32_t traj_pos) -> Point {
      return sequences_[traj_pos].points[static_cast<size_t>(child_level)];
    };

    auto groups =
        StrTile(std::move(cur.members), level_point, fanout, build_pool, &off);
    first_child_[cur.node] = static_cast<uint32_t>(level_.size());
    child_count_[cur.node] = static_cast<uint32_t>(groups.size());
    for (auto& group : groups) {
      const uint32_t child = add_node(child_level);
      leaf_members.emplace_back();
      uint32_t lo = std::numeric_limits<uint32_t>::max();
      uint32_t hi = 0;
      for (uint32_t pos : group) {
        const Point p = level_point(pos);
        xlo_[child] = std::min(xlo_[child], p.x);
        ylo_[child] = std::min(ylo_[child], p.y);
        xhi_[child] = std::max(xhi_[child], p.x);
        yhi_[child] = std::max(yhi_[child], p.y);
        const uint32_t src = static_cast<uint32_t>(
            sequences_[pos].source_indices[static_cast<size_t>(child_level)]);
        lo = std::min(lo, src);
        hi = std::max(hi, src);
        if (!sequences_[pos].chargeable[static_cast<size_t>(child_level)]) {
          chargeable_[child] = 0;
        }
      }
      src_lo_[child] = lo;
      src_hi_[child] = hi;
      queue.push_back(Pending{child, child_level, std::move(group)});
    }
  }

  // DFS pass assigns every leaf an items span in traversal-emission order,
  // so the search appends strictly increasing ranges of one flat array.
  items_.reserve(trajectories_.size());
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    if (child_count_[n] == 0) {
      items_begin_[n] = static_cast<uint32_t>(items_.size());
      items_.insert(items_.end(), leaf_members[n].begin(), leaf_members[n].end());
      items_end_[n] = static_cast<uint32_t>(items_.size());
      continue;
    }
    for (uint32_t c = first_child_[n] + child_count_[n];
         c-- > first_child_[n];) {
      stack.push_back(c);
    }
  }

  // Subtree membership counts, for the funnel's per-level pruning tallies.
  // BFS numbering guarantees every child id exceeds its parent's, so one
  // reverse sweep folds leaf span lengths up to the root.
  subtree_count_.assign(level_.size(), 0);
  for (uint32_t n = static_cast<uint32_t>(level_.size()); n-- > 0;) {
    if (child_count_[n] == 0) {
      subtree_count_[n] = items_end_[n] - items_begin_[n];
    } else {
      uint32_t total = 0;
      for (uint32_t c = first_child_[n]; c < first_child_[n] + child_count_[n];
           ++c) {
        total += subtree_count_[c];
      }
      subtree_count_[n] = total;
    }
  }

  if (offloaded_seconds != nullptr) *offloaded_seconds += off;
  return Status::OK();
}

double TrieIndex::SuffixMinDist(const Trajectory& q, size_t suffix_start,
                                uint32_t n, double limit,
                                size_t* next_suffix_start) const {
  const auto& pts = q.points();
  const double xlo = xlo_[n], ylo = ylo_[n], xhi = xhi_[n], yhi = yhi_[n];
  // The scan minimises squared distances and takes one sqrt at the end —
  // bit-identical to a per-point sqrt (see PlaneMinDistSq) but off the
  // loop-carried min. The within-limit test stays exact: the squared
  // pre-filter over-covers by a few ulps, and the sqrt re-test settles the
  // boundary cases it admits.
  double best_sq = kInf;
  size_t first_within = pts.size();
  const double limit_sq_ub = limit * limit * (1.0 + 1e-14);
  for (size_t j = suffix_start; j < pts.size(); ++j) {
    const double dsq = PlaneMinDistSq(xlo, ylo, xhi, yhi, pts[j]);
    best_sq = std::min(best_sq, dsq);
    if (first_within == pts.size() && dsq <= limit_sq_ub &&
        std::sqrt(dsq) <= limit) {
      first_within = j;
    }
    if (best_sq == 0.0 && first_within != pts.size()) break;  // cannot improve
  }
  // Lemma 5.1: query points before the first one within `limit` of this
  // pivot MBR cannot align to this pivot nor to any later one.
  if (next_suffix_start != nullptr) {
    *next_suffix_start = first_within == pts.size() ? suffix_start : first_within;
  }
  return std::sqrt(best_sq);
}

bool TrieIndex::TestNode(uint32_t n, const SearchSpec& spec,
                         const MBR* suffix_mbrs, double* budget,
                         uint32_t* suffix_start) const {
  const int32_t level = level_[n];
  if (level < 0) return true;  // root
  const Trajectory& q = *spec.query;
  const double xlo = xlo_[n], ylo = ylo_[n], xhi = xhi_[n], yhi = yhi_[n];

  switch (spec.mode) {
    case PruneMode::kAccumulate: {
      // Non-chargeable levels (padded repeats of an earlier source point)
      // must not contribute to the accumulated bound.
      if (!chargeable_[n]) return true;
      if (spec.erp_gap != nullptr) {
        // ERP: a row may match the gap point; no alignment, no trimming.
        double dsq = PlaneMinDistSq(xlo, ylo, xhi, yhi, *spec.erp_gap);
        for (const Point& p : q.points()) {
          if (dsq == 0.0) break;
          dsq = std::min(dsq, PlaneMinDistSq(xlo, ylo, xhi, yhi, p));
        }
        const double d = std::sqrt(dsq);
        if (d > *budget) return false;
        *budget -= d;
        return true;
      }
      double d;
      if (level == 0) {
        d = PlaneMinDist(xlo, ylo, xhi, yhi, q.front());
      } else if (level == 1) {
        d = PlaneMinDist(xlo, ylo, xhi, yhi, q.back());
      } else {
        // O(1) pre-test before the O(n) suffix scan.
        if (PlaneMinDistRect(xlo, ylo, xhi, yhi, suffix_mbrs[*suffix_start]) >
            *budget) {
          return false;
        }
        size_t next = *suffix_start;
        d = SuffixMinDist(q, *suffix_start, n, *budget, &next);
        *suffix_start = static_cast<uint32_t>(next);
      }
      if (d > *budget) return false;
      *budget -= d;
      return true;
    }
    case PruneMode::kMax: {
      double d;
      if (level == 0) {
        d = PlaneMinDist(xlo, ylo, xhi, yhi, q.front());
      } else if (level == 1) {
        d = PlaneMinDist(xlo, ylo, xhi, yhi, q.back());
      } else {
        if (PlaneMinDistRect(xlo, ylo, xhi, yhi, suffix_mbrs[*suffix_start]) >
            *budget) {
          return false;
        }
        size_t next = *suffix_start;
        const double sd = SuffixMinDist(q, *suffix_start, n, *budget, &next);
        *suffix_start = static_cast<uint32_t>(next);
        d = sd;
      }
      return d <= *budget;  // budget stays tau for max-style distances
    }
    case PruneMode::kEditCount: {
      // A level whose indexing point cannot match any (eligible) query
      // point within epsilon forces at least one edit (Appendix A).
      double dsq = kInf;
      size_t j_lo = 0;
      size_t j_hi = q.size();
      if (level >= 2 && spec.lcss_delta >= 0) {
        // LCSS index constraint: pivot at source index s may only match
        // query indices within delta of it.
        const size_t delta = static_cast<size_t>(spec.lcss_delta);
        const size_t lo = src_lo_[n];
        j_lo = lo > delta ? lo - delta : 0;
        j_hi = std::min(q.size(), static_cast<size_t>(src_hi_[n]) + delta + 1);
      }
      for (size_t j = j_lo; j < j_hi; ++j) {
        dsq = std::min(dsq, PlaneMinDistSq(xlo, ylo, xhi, yhi, q[j]));
        if (dsq == 0.0) break;
      }
      if (std::sqrt(dsq) > spec.epsilon && chargeable_[n]) *budget -= 1.0;
      return *budget >= 0.0;
    }
  }
  return true;
}

void TrieIndex::CollectCandidates(const SearchSpec& spec,
                                  std::vector<uint32_t>* out,
                                  ProbeStats* stats, Scratch* scratch) const {
  DITA_CHECK(spec.query != nullptr);
  if (trajectories_.empty() || spec.query->empty()) return;
  double budget = spec.tau;
  if (spec.mode == PruneMode::kEditCount) budget = std::floor(spec.tau);
  // suffix_mbrs[j] covers query points [j, n). Traversal buffers live in a
  // caller-owned (or per-thread default) Scratch reused across calls:
  // CollectCandidates runs once per (query, partition) inside hot
  // search/join loops, and per-call allocations show up in filter-dominated
  // profiles.
  Scratch& s = scratch != nullptr ? *scratch : Scratch::ThreadLocal();
  const auto& pts = spec.query->points();
  std::vector<MBR>& suffix_mbrs = s.suffix_mbrs;
  suffix_mbrs.assign(pts.size() + 1, MBR{});
  for (size_t j = pts.size(); j-- > 0;) {
    suffix_mbrs[j] = suffix_mbrs[j + 1];
    suffix_mbrs[j].Expand(pts[j]);
  }

  // Iterative DFS. A frame is a node whose own test passed; popping an
  // internal node scans its children — a contiguous id range, so the
  // per-sibling MBR tests walk the SoA planes sequentially — and pushes the
  // survivors in reverse so emission order matches the recursive reference.
  std::vector<Frame>& stack = s.stack;
  std::vector<Frame>& survivors = s.survivors;
  stack.clear();
  stack.push_back(Frame{0, 0, budget});
  uint32_t visits_since_check = 0;
  while (!stack.empty()) {
    if (spec.ctx != nullptr && visits_since_check >= kCheckStride) {
      if (spec.ctx->CheckPoint(visits_since_check)) return;
      visits_since_check = 0;
    }
    const Frame f = stack.back();
    stack.pop_back();
    const uint32_t cnt = child_count_[f.node];
    if (cnt == 0) {
      const uint32_t span =
          items_end_[f.node] - items_begin_[f.node];
      if (spec.ctx != nullptr && spec.ctx->ChargeCandidates(span)) return;
      out->insert(out->end(), items_.begin() + items_begin_[f.node],
                  items_.begin() + items_end_[f.node]);
      continue;
    }
    const uint32_t fc = first_child_[f.node];
    survivors.clear();
    visits_since_check += cnt;
    for (uint32_t c = fc; c < fc + cnt; ++c) {
      double b = f.budget;
      uint32_t st = f.suffix_start;
      const bool pass = TestNode(c, spec, suffix_mbrs.data(), &b, &st);
      if (stats != nullptr) {
        ++stats->nodes_visited;
        if (!pass) {
          ++stats->nodes_pruned;
          stats->pruned_members[static_cast<size_t>(level_[c])] +=
              subtree_count_[c];
        }
      }
      if (pass) survivors.push_back(Frame{c, st, b});
    }
    for (size_t i = survivors.size(); i-- > 0;) stack.push_back(survivors[i]);
  }
  // Flush the sub-stride remainder so ops accounting is exact per traversal:
  // without this, a selective query (< kCheckStride visits) charges nothing,
  // leaving CancelAfterOps triggers unreachable and time-to-stop unmeasured.
  if (spec.ctx != nullptr && visits_since_check > 0) {
    spec.ctx->CheckPoint(visits_since_check);
  }
}

void TrieIndex::CollectCandidatesBatch(BatchQuery* queries, size_t count,
                                       Scratch* scratch) const {
  if (count == 0) return;
  Scratch& s = scratch != nullptr ? *scratch : Scratch::ThreadLocal();
  if (count == 1) {
    CollectCandidates(queries[0].spec, queries[0].out, queries[0].stats, &s);
    return;
  }
  const PruneMode mode = queries[0].spec.mode;
  s.order.clear();
  for (size_t i = 0; i < count; ++i) {
    DITA_CHECK(queries[i].spec.query != nullptr);
    DITA_CHECK(queries[i].out != nullptr);
    // Budgets and taus may differ per member; the pruning *algebra* may not
    // (the shared group bound assumes one mode across the batch).
    DITA_CHECK(queries[i].spec.mode == mode);
    // Members the single-query path would return early for take no part in
    // the traversal (no output, no stats, no context charges).
    if (!trajectories_.empty() && !queries[i].spec.query->empty()) {
      s.order.push_back(static_cast<uint32_t>(i));
    }
  }
  if (s.order.empty()) return;
  // Group members whose traversals overlap: queries with nearby first
  // points survive the same level-0 children, so their alive masks stay
  // dense through the upper trie and sibling tests are genuinely shared.
  // Morton order over the root MBR keeps each group a compact square-ish
  // cluster (a raw x-sort would produce full-height slabs, whose alive
  // union covers too much area for the group bound to ever prune).
  const MBR root(Point{xlo_[0], ylo_[0]}, Point{xhi_[0], yhi_[0]});
  const double sx =
      root.hi().x > root.lo().x ? 65535.0 / (root.hi().x - root.lo().x) : 0.0;
  const double sy =
      root.hi().y > root.lo().y ? 65535.0 / (root.hi().y - root.lo().y) : 0.0;
  auto morton = [&](const Point& p) {
    auto q = [](double v) {
      return static_cast<uint32_t>(std::clamp(v, 0.0, 65535.0));
    };
    uint64_t x = q((p.x - root.lo().x) * sx);
    uint64_t y = q((p.y - root.lo().y) * sy);
    auto spread = [](uint64_t v) {
      v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
      v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
      v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
      v = (v | (v << 2)) & 0x3333333333333333ull;
      v = (v | (v << 1)) & 0x5555555555555555ull;
      return v;
    };
    return (spread(x) << 1) | spread(y);
  };
  // Keys are computed once and carried through the sort (the comparator
  // must not re-derive them — it runs O(n log n) times). The member index
  // rides in the low 32 bits, so equal cells stay in submission order.
  std::vector<uint64_t>& keyed = s.keys;
  keyed.resize(s.order.size());
  for (size_t i = 0; i < s.order.size(); ++i) {
    const uint32_t idx = s.order[i];
    keyed[i] = (morton(queries[idx].spec.query->front()) << 32) | idx;
  }
  std::sort(keyed.begin(), keyed.end());
  for (size_t i = 0; i < keyed.size(); ++i) {
    s.order[i] = static_cast<uint32_t>(keyed[i]);
  }
  for (size_t g = 0; g < s.order.size(); g += kMaxBatchGroup) {
    const size_t group_size = std::min(kMaxBatchGroup, s.order.size() - g);
    CollectGroup(queries, s.order.data() + g, group_size, &s);
  }
}

void TrieIndex::CollectGroup(BatchQuery* queries, const uint32_t* members,
                             size_t group_size, Scratch* s) const {
  // --- Per-member tables: concatenated suffix-MBR arenas (what TestNode
  // indexes by suffix_start), whole-query MBRs for the levels whose bound
  // scans every point, initial (budget, suffix_start) states.
  const PruneMode mode = queries[members[0]].spec.mode;
  // Size the arenas up front and overwrite in place. The arenas are not
  // cleared: clear + resize would default-fill every slot (an MBR memset
  // per point) just to be overwritten below — measurably ~15% of the whole
  // batched collect at bench scale. Stale contents from a previous group
  // are dead: every slot except the per-member empty sentinel is written.
  size_t total_pts = 0;
  for (size_t k = 0; k < group_size; ++k) {
    total_pts += queries[members[k]].spec.query->size();
  }
  if (s->batch_mbrs.size() < total_pts + group_size) {
    s->batch_mbrs.resize(total_pts + group_size);
  }
  if (s->qx.size() < total_pts) {
    s->qx.resize(total_pts);
    s->qy.resize(total_pts);
  }
  s->whole_mbrs.assign(group_size, MBR{});
  s->mbr_off.assign(group_size, 0);
  s->visits.assign(group_size, 0);
  s->frame_states.assign(group_size, QueryState{});
  s->states.clear();
  bool any_ctx = false;
  bool any_stats = false;
  uint64_t alive0 = 0;
  size_t base = 0;
  size_t pbase = 0;
  for (size_t k = 0; k < group_size; ++k) {
    const SearchSpec& spec = queries[members[k]].spec;
    const auto& pts = spec.query->points();
    s->mbr_off[k] = static_cast<uint32_t>(base);
    // Suffix-MBR chain, written as an explicit min/max fold (what
    // MBR::Expand does per call, minus the per-point out-of-line call —
    // the chain is ~20% of single-query collect time at bench scale), plus
    // the SoA point copies the vectorized scan kernel reads.
    s->batch_mbrs[base + pts.size()] = MBR{};  // empty sentinel
    double lx = kInf, ly = kInf, hx = -kInf, hy = -kInf;
    for (size_t j = pts.size(); j-- > 0;) {
      const Point& p = pts[j];
      s->qx[pbase + j] = p.x;
      s->qy[pbase + j] = p.y;
      lx = std::min(lx, p.x);
      ly = std::min(ly, p.y);
      hx = std::max(hx, p.x);
      hy = std::max(hy, p.y);
      s->batch_mbrs[base + j] = MBR(Point{lx, ly}, Point{hx, hy});
    }
    s->whole_mbrs[k] = s->batch_mbrs[base];
    if (mode == PruneMode::kAccumulate && spec.erp_gap != nullptr) {
      s->whole_mbrs[k].Expand(*spec.erp_gap);
    }
    double budget = spec.tau;
    if (mode == PruneMode::kEditCount) budget = std::floor(spec.tau);
    s->states.push_back(QueryState{budget, 0});
    any_ctx = any_ctx || spec.ctx != nullptr;
    any_stats = any_stats || queries[members[k]].stats != nullptr;
    alive0 |= uint64_t{1} << k;
    base += pts.size() + 1;
    pbase += pts.size();
  }
  // Resolve per-member geometry after the arenas stop growing (the vectors
  // above may reallocate while members append).
  s->refs.assign(group_size, MemberRef{});
  {
    size_t pbase = 0;
    for (size_t k = 0; k < group_size; ++k) {
      const Trajectory& q = *queries[members[k]].spec.query;
      MemberRef& r = s->refs[k];
      r.xs = s->qx.data() + pbase;
      r.ys = s->qy.data() + pbase;
      r.smbrs = s->batch_mbrs.data() + s->mbr_off[k];
      r.n = static_cast<uint32_t>(q.size());
      r.fx = q.front().x;
      r.fy = q.front().y;
      r.bx = q.back().x;
      r.by = q.back().y;
      pbase += q.size();
    }
  }
  // The two modes whose node test is a pure rectangle-distance gate get the
  // specialized traversal; edit-count and ERP keep the generic loop below.
  if (mode == PruneMode::kMax ||
      (mode == PruneMode::kAccumulate &&
       queries[members[0]].spec.erp_gap == nullptr)) {
    CollectGroupFast(queries, members, group_size, s, alive0, any_ctx,
                     any_stats, mode == PruneMode::kMax);
    return;
  }

  // --- Shared DFS. A frame carries the alive bitset and the offset of the
  // packed per-alive-member states (bit-rank order against frame.alive).
  // `stopped` accumulates members whose QueryContext fired; they drop out
  // of every subsequent frame without perturbing the others. Per member,
  // the subsequence of frames where its bit is set is exactly its
  // single-query DFS, so outputs, stats, and context charges all match the
  // standalone path bit for bit.
  std::vector<BatchFrame>& stack = s->bstack;
  std::vector<BatchFrame>& survivors = s->bsurvivors;
  const MBR* mbr_base = s->batch_mbrs.data();
  stack.clear();
  stack.push_back(BatchFrame{0, 0, alive0});
  uint64_t stopped = 0;
  while (!stack.empty()) {
    const BatchFrame f = stack.back();
    stack.pop_back();
    uint64_t e = f.alive & ~stopped;
    if (e == 0) continue;
    if (any_ctx) {
      // The single-query loop checkpoints at the top of every iteration
      // once the stride fills; a member's iterations are the frames where
      // it is alive.
      for (uint64_t m = e; m != 0; m &= m - 1) {
        const int k = std::countr_zero(m);
        QueryContext* ctx = queries[members[k]].spec.ctx;
        if (ctx != nullptr && s->visits[k] >= kCheckStride) {
          if (ctx->CheckPoint(s->visits[k])) {
            stopped |= uint64_t{1} << k;
          } else {
            s->visits[k] = 0;
          }
        }
      }
      e = f.alive & ~stopped;
      if (e == 0) continue;
    }
    const uint32_t cnt = child_count_[f.node];
    if (cnt == 0) {
      const uint32_t ib = items_begin_[f.node];
      const uint32_t ie = items_end_[f.node];
      for (uint64_t m = e; m != 0; m &= m - 1) {
        const int k = std::countr_zero(m);
        BatchQuery& bq = queries[members[k]];
        if (bq.spec.ctx != nullptr && bq.spec.ctx->ChargeCandidates(ie - ib)) {
          stopped |= uint64_t{1} << k;
          continue;
        }
        bq.out->insert(bq.out->end(), items_.begin() + ib, items_.begin() + ie);
      }
      continue;
    }
    const uint32_t fc = first_child_[f.node];
    const int32_t clevel = level_[fc];

    // Unpack this frame's rank-packed states into the dense per-member
    // table once; the union pass and every child's member loop then index
    // it directly instead of re-ranking with popcount per (child, member).
    {
      uint32_t idx = 0;
      QueryState* dense = s->frame_states.data();
      for (uint64_t m = f.alive; m != 0; m &= m - 1) {
        dense[std::countr_zero(m)] = s->states[f.state_off + idx++];
      }
    }

    // Group bound for this frame's children (siblings share one level): the
    // union of every alive member's tested point set and the loosest alive
    // budget. The union rectangle under-estimates each member's own lower
    // bound, so a child farther than max_budget from it fails every
    // member's TestNode — one rectangle test prunes it for the whole group.
    MBR gmbr;
    double max_budget = -kInf;
    double max_eps = -kInf;
    for (uint64_t m = e; m != 0; m &= m - 1) {
      const int k = std::countr_zero(m);
      const QueryState& st = s->frame_states[k];
      const SearchSpec& spec = queries[members[k]].spec;
      max_budget = std::max(max_budget, st.budget);
      if (spec.ctx != nullptr) s->visits[k] += cnt;
      if (mode == PruneMode::kEditCount) {
        max_eps = std::max(max_eps, spec.epsilon);
        gmbr.Expand(s->whole_mbrs[k]);
      } else if (mode == PruneMode::kAccumulate && spec.erp_gap != nullptr) {
        gmbr.Expand(s->whole_mbrs[k]);
      } else if (clevel == 0) {
        gmbr.Expand(spec.query->front());
      } else if (clevel == 1) {
        gmbr.Expand(spec.query->back());
      } else {
        gmbr.Expand(mbr_base[s->mbr_off[k] + st.suffix_start]);
      }
    }

    survivors.clear();
    for (uint32_t c = fc; c < fc + cnt; ++c) {
      // Shared prune: sound only where TestNode actually applies a distance
      // gate — accumulate/edit skip non-chargeable levels entirely, and the
      // edit mode only fails when the forced edit overdraws every budget.
      bool prune_all = false;
      if (mode == PruneMode::kMax || chargeable_[c]) {
        const double gd =
            PlaneMinDistRect(xlo_[c], ylo_[c], xhi_[c], yhi_[c], gmbr);
        prune_all = mode == PruneMode::kEditCount
                        ? (gd > max_eps && max_budget - 1.0 < 0.0)
                        : gd > max_budget;
      }
      if (prune_all) {
        if (any_stats) {
          for (uint64_t m = e; m != 0; m &= m - 1) {
            ProbeStats* stats = queries[members[std::countr_zero(m)]].stats;
            if (stats != nullptr) {
              ++stats->nodes_visited;
              ++stats->nodes_pruned;
              stats->pruned_members[static_cast<size_t>(clevel)] +=
                  subtree_count_[c];
            }
          }
        }
        continue;
      }
      uint64_t child_alive = 0;
      s->tmp_states.clear();
      for (uint64_t m = e; m != 0; m &= m - 1) {
        const int k = std::countr_zero(m);
        const uint64_t bit = uint64_t{1} << k;
        QueryState st = s->frame_states[k];
        const SearchSpec& spec = queries[members[k]].spec;
        const bool pass = TestNode(c, spec, mbr_base + s->mbr_off[k],
                                   &st.budget, &st.suffix_start);
        ProbeStats* stats = queries[members[k]].stats;
        if (stats != nullptr) {
          ++stats->nodes_visited;
          if (!pass) {
            ++stats->nodes_pruned;
            stats->pruned_members[static_cast<size_t>(clevel)] +=
                subtree_count_[c];
          }
        }
        if (pass) {
          child_alive |= bit;
          s->tmp_states.push_back(st);
        }
      }
      if (child_alive != 0) {
        const uint32_t off = static_cast<uint32_t>(s->states.size());
        s->states.insert(s->states.end(), s->tmp_states.begin(),
                         s->tmp_states.end());
        survivors.push_back(BatchFrame{c, off, child_alive});
      }
    }
    for (size_t i = survivors.size(); i-- > 0;) stack.push_back(survivors[i]);
  }
  // Per-member sub-stride flush, as at the end of the single-query loop.
  if (any_ctx) {
    for (size_t k = 0; k < group_size; ++k) {
      QueryContext* ctx = queries[members[k]].spec.ctx;
      if (ctx != nullptr && (stopped & (uint64_t{1} << k)) == 0 &&
          s->visits[k] > 0) {
        ctx->CheckPoint(s->visits[k]);
      }
    }
  }
}

void TrieIndex::CollectGroupFast(BatchQuery* queries, const uint32_t* members,
                                 size_t group_size, Scratch* s, uint64_t alive0,
                                 bool any_ctx, bool any_stats,
                                 bool is_max) const {
  (void)group_size;
  const MemberRef* refs = s->refs.data();
  std::vector<BatchFrame>& stack = s->bstack;
  std::vector<BatchFrame>& survivors = s->bsurvivors;
  stack.clear();
  stack.push_back(BatchFrame{0, 0, alive0});
  uint64_t stopped = 0;
  while (!stack.empty()) {
    const BatchFrame f = stack.back();
    stack.pop_back();
    uint64_t e = f.alive & ~stopped;
    if (e == 0) continue;
    if (any_ctx) {
      for (uint64_t m = e; m != 0; m &= m - 1) {
        const int k = std::countr_zero(m);
        QueryContext* ctx = queries[members[k]].spec.ctx;
        if (ctx != nullptr && s->visits[k] >= kCheckStride) {
          if (ctx->CheckPoint(s->visits[k])) {
            stopped |= uint64_t{1} << k;
          } else {
            s->visits[k] = 0;
          }
        }
      }
      e = f.alive & ~stopped;
      if (e == 0) continue;
    }
    const uint32_t cnt = child_count_[f.node];
    if (cnt == 0) {
      const uint32_t ib = items_begin_[f.node];
      const uint32_t ie = items_end_[f.node];
      for (uint64_t m = e; m != 0; m &= m - 1) {
        const int k = std::countr_zero(m);
        BatchQuery& bq = queries[members[k]];
        if (bq.spec.ctx != nullptr && bq.spec.ctx->ChargeCandidates(ie - ib)) {
          stopped |= uint64_t{1} << k;
          continue;
        }
        bq.out->insert(bq.out->end(), items_.begin() + ib, items_.begin() + ie);
      }
      continue;
    }
    const uint32_t fc = first_child_[f.node];
    const int32_t clevel = level_[fc];

    if (any_ctx) {
      for (uint64_t m = e; m != 0; m &= m - 1) {
        const int k = std::countr_zero(m);
        if (queries[members[k]].spec.ctx != nullptr) s->visits[k] += cnt;
      }
    }

    // Singleton frames — one member alive, the common case once the
    // members' traversals diverge — skip every per-frame group structure:
    // no union bound, no bit loops, no dense state unpack (the one packed
    // state is read directly at its bit rank), and passing children go onto
    // the stack in reverse child order with no survivors staging.
    const bool grouped = (e & (e - 1)) != 0;
    if (!grouped) {
      const int k = std::countr_zero(e);
      const QueryState base_st =
          s->states[f.state_off +
                    std::popcount(f.alive & ((uint64_t{1} << k) - 1))];
      const MemberRef& r = refs[k];
      ProbeStats* stats =
          any_stats ? queries[members[k]].stats : nullptr;
      // The member's tested rect — front/back point or its current suffix
      // MBR — is the same for every sibling of this frame, and the child
      // planes are contiguous SoA lanes, so one vectorized sweep computes
      // every sibling's test distance (the level >= 2 sweep yields the
      // O(1) rectangle pre-test; only children passing it get a scan).
      if (s->cdist.size() < cnt) s->cdist.resize(cnt);
      double* cd = s->cdist.data();
      bool have_dist = true;
      if (clevel == 0) {
        ChildPlaneDists(xlo_.data() + fc, ylo_.data() + fc, xhi_.data() + fc,
                        yhi_.data() + fc, cnt, r.fx, r.fy, r.fx, r.fy, cd);
      } else if (clevel == 1) {
        ChildPlaneDists(xlo_.data() + fc, ylo_.data() + fc, xhi_.data() + fc,
                        yhi_.data() + fc, cnt, r.bx, r.by, r.bx, r.by, cd);
      } else {
        const MBR& sm = r.smbrs[base_st.suffix_start];
        if (sm.empty()) {
          have_dist = false;  // pre-test distance is +inf for every child
        } else {
          ChildPlaneDists(xlo_.data() + fc, ylo_.data() + fc,
                          xhi_.data() + fc, yhi_.data() + fc, cnt, sm.hi().x,
                          sm.hi().y, sm.lo().x, sm.lo().y, cd);
        }
      }
      for (uint32_t c = fc + cnt; c-- > fc;) {
        QueryState st = base_st;
        bool pass;
        if (!is_max && chargeable_[c] == 0) {
          pass = true;
        } else if (clevel <= 1) {
          const double d = cd[c - fc];
          pass = d <= st.budget;
          if (pass && !is_max) st.budget -= d;
        } else {
          const double rd = have_dist ? cd[c - fc] : kInf;
          if (rd > st.budget) {
            pass = false;
          } else {
            const double limit = st.budget;
            const double limit_sq_ub = limit * limit * (1.0 + 1e-14);
            const SuffixScanResult sr =
                SuffixScan(r.xs, r.ys, st.suffix_start, r.n, xlo_[c], ylo_[c],
                           xhi_[c], yhi_[c], limit, limit_sq_ub);
            if (sr.first_within != r.n) {
              st.suffix_start = static_cast<uint32_t>(sr.first_within);
            }
            const double d = std::sqrt(sr.best_sq);
            pass = d <= st.budget;
            if (pass && !is_max) st.budget -= d;
          }
        }
        if (stats != nullptr) {
          ++stats->nodes_visited;
          if (!pass) {
            ++stats->nodes_pruned;
            stats->pruned_members[static_cast<size_t>(clevel)] +=
                subtree_count_[c];
          }
        }
        if (pass) {
          const uint32_t off = static_cast<uint32_t>(s->states.size());
          s->states.push_back(st);
          stack.push_back(BatchFrame{c, off, e});
        }
      }
      continue;
    }

    // One rank-ordered unpack of this frame's packed states into the dense
    // per-member lane; the union pass and every child's member loop below
    // index it directly.
    {
      uint32_t idx = 0;
      QueryState* dense = s->frame_states.data();
      for (uint64_t m = f.alive; m != 0; m &= m - 1) {
        dense[std::countr_zero(m)] = s->states[f.state_off + idx++];
      }
    }

    // Group bound over the alive members' tested sets (front points, back
    // points, or current suffix rectangles) and the loosest alive budget.
    // Each member's own test distance is >= the distance to this union, so
    // one child-vs-union rectangle test can prune the child for the whole
    // group (gd > max_budget) — or for one member with a single compare
    // (gd > that member's budget) before its full test runs. Singleton
    // frames never reach here — the union would just re-state the one
    // member's own bound at extra cost.
    double gxlo = kInf, gylo = kInf, gxhi = -kInf, gyhi = -kInf;
    double max_budget = -kInf;
    if (grouped) {
      for (uint64_t m = e; m != 0; m &= m - 1) {
        const int k = std::countr_zero(m);
        const QueryState& st = s->frame_states[k];
        max_budget = std::max(max_budget, st.budget);
        if (clevel == 0) {
          const MemberRef& r = refs[k];
          gxlo = std::min(gxlo, r.fx);
          gylo = std::min(gylo, r.fy);
          gxhi = std::max(gxhi, r.fx);
          gyhi = std::max(gyhi, r.fy);
        } else if (clevel == 1) {
          const MemberRef& r = refs[k];
          gxlo = std::min(gxlo, r.bx);
          gylo = std::min(gylo, r.by);
          gxhi = std::max(gxhi, r.bx);
          gyhi = std::max(gyhi, r.by);
        } else {
          const MBR& sm = refs[k].smbrs[st.suffix_start];
          gxlo = std::min(gxlo, sm.lo().x);
          gylo = std::min(gylo, sm.lo().y);
          gxhi = std::max(gxhi, sm.hi().x);
          gyhi = std::max(gyhi, sm.hi().y);
        }
      }
    }

    // One vectorized sweep computes every sibling's distance to the union
    // rect; the per-child loop below reads it for the group prune and the
    // per-member budget shortcut.
    if (s->cdist.size() < cnt) s->cdist.resize(cnt);
    double* gdist = s->cdist.data();
    ChildPlaneDists(xlo_.data() + fc, ylo_.data() + fc, xhi_.data() + fc,
                    yhi_.data() + fc, cnt, gxhi, gyhi, gxlo, gylo, gdist);

    survivors.clear();
    for (uint32_t c = fc; c < fc + cnt; ++c) {
      const double xlo = xlo_[c], ylo = ylo_[c];
      const double xhi = xhi_[c], yhi = yhi_[c];
      // Accumulate skips non-chargeable levels entirely; max always tests.
      const bool gated = is_max || chargeable_[c] != 0;
      double gd = 0.0;
      if (gated) {
        gd = gdist[c - fc];
        if (gd > max_budget) {
          if (any_stats) {
            for (uint64_t m = e; m != 0; m &= m - 1) {
              ProbeStats* stats = queries[members[std::countr_zero(m)]].stats;
              if (stats != nullptr) {
                ++stats->nodes_visited;
                ++stats->nodes_pruned;
                stats->pruned_members[static_cast<size_t>(clevel)] +=
                    subtree_count_[c];
              }
            }
          }
          continue;
        }
      }
      uint64_t child_alive = 0;
      s->tmp_states.clear();
      for (uint64_t m = e; m != 0; m &= m - 1) {
        const int k = std::countr_zero(m);
        QueryState st = s->frame_states[k];
        const MemberRef& r = refs[k];
        bool pass;
        if (!gated) {
          // Non-chargeable accumulate level: TestNode returns true with the
          // state untouched.
          pass = true;
        } else if (grouped && gd > st.budget) {
          // This member's own test distance is >= gd, so it must fail; skip
          // the full test (same outcome, one compare).
          pass = false;
        } else if (clevel == 0) {
          const double dx = std::max({xlo - r.fx, 0.0, r.fx - xhi});
          const double dy = std::max({ylo - r.fy, 0.0, r.fy - yhi});
          const double d = std::sqrt(dx * dx + dy * dy);
          pass = d <= st.budget;
          if (pass && !is_max) st.budget -= d;
        } else if (clevel == 1) {
          const double dx = std::max({xlo - r.bx, 0.0, r.bx - xhi});
          const double dy = std::max({ylo - r.by, 0.0, r.by - yhi});
          const double d = std::sqrt(dx * dx + dy * dy);
          pass = d <= st.budget;
          if (pass && !is_max) st.budget -= d;
        } else {
          // Pivot level: O(1) suffix-rectangle pre-test, then the suffix
          // scan (vectorized; bit-identical to SuffixMinDist).
          const MBR& sm = r.smbrs[st.suffix_start];
          double rd = kInf;
          if (!sm.empty()) {
            const double dx = std::max({xlo - sm.hi().x, 0.0, sm.lo().x - xhi});
            const double dy = std::max({ylo - sm.hi().y, 0.0, sm.lo().y - yhi});
            rd = std::sqrt(dx * dx + dy * dy);
          }
          if (rd > st.budget) {
            pass = false;
          } else {
            const double limit = st.budget;
            const double limit_sq_ub = limit * limit * (1.0 + 1e-14);
            const SuffixScanResult sr =
                SuffixScan(r.xs, r.ys, st.suffix_start, r.n, xlo, ylo, xhi,
                           yhi, limit, limit_sq_ub);
            if (sr.first_within != r.n) {
              st.suffix_start = static_cast<uint32_t>(sr.first_within);
            }
            const double d = std::sqrt(sr.best_sq);
            pass = d <= st.budget;
            if (pass && !is_max) st.budget -= d;
          }
        }
        if (any_stats) {
          ProbeStats* stats = queries[members[k]].stats;
          if (stats != nullptr) {
            ++stats->nodes_visited;
            if (!pass) {
              ++stats->nodes_pruned;
              stats->pruned_members[static_cast<size_t>(clevel)] +=
                  subtree_count_[c];
            }
          }
        }
        if (pass) {
          child_alive |= uint64_t{1} << k;
          s->tmp_states.push_back(st);
        }
      }
      if (child_alive != 0) {
        const uint32_t off = static_cast<uint32_t>(s->states.size());
        s->states.insert(s->states.end(), s->tmp_states.begin(),
                         s->tmp_states.end());
        survivors.push_back(BatchFrame{c, off, child_alive});
      }
    }
    for (size_t i = survivors.size(); i-- > 0;) stack.push_back(survivors[i]);
  }
  if (any_ctx) {
    for (uint64_t m = alive0 & ~stopped; m != 0; m &= m - 1) {
      const int k = std::countr_zero(m);
      QueryContext* ctx = queries[members[k]].spec.ctx;
      if (ctx != nullptr && s->visits[k] > 0) ctx->CheckPoint(s->visits[k]);
    }
  }
}

void TrieIndex::CollectCandidatesReference(const SearchSpec& spec,
                                           std::vector<uint32_t>* out) const {
  DITA_CHECK(spec.query != nullptr);
  if (trajectories_.empty() || spec.query->empty()) return;
  double budget = spec.tau;
  if (spec.mode == PruneMode::kEditCount) budget = std::floor(spec.tau);
  const auto& pts = spec.query->points();
  std::vector<MBR> suffix_mbrs(pts.size() + 1, MBR{});
  for (size_t j = pts.size(); j-- > 0;) {
    suffix_mbrs[j] = suffix_mbrs[j + 1];
    suffix_mbrs[j].Expand(pts[j]);
  }
  SearchNodeReference(0, spec, suffix_mbrs.data(), budget, /*suffix_start=*/0,
                      out);
}

void TrieIndex::SearchNodeReference(uint32_t n, const SearchSpec& spec,
                                    const MBR* suffix_mbrs, double budget,
                                    uint32_t suffix_start,
                                    std::vector<uint32_t>* out) const {
  if (!TestNode(n, spec, suffix_mbrs, &budget, &suffix_start)) return;
  const uint32_t cnt = child_count_[n];
  if (cnt == 0) {
    out->insert(out->end(), items_.begin() + items_begin_[n],
                items_.begin() + items_end_[n]);
    return;
  }
  for (uint32_t c = first_child_[n]; c < first_child_[n] + cnt; ++c) {
    SearchNodeReference(c, spec, suffix_mbrs, budget, suffix_start, out);
  }
}

size_t TrieIndex::ByteSize() const {
  const size_t n = level_.size();
  size_t bytes = 4 * n * sizeof(double)       // xlo/ylo/xhi/yhi planes
                 + n * sizeof(int32_t)        // level
                 + 6 * n * sizeof(uint32_t)   // child/items spans, src range
                 + n * sizeof(uint8_t)        // chargeable mask
                 + items_.size() * sizeof(uint32_t);
  for (const IndexingSequence& s : sequences_) {
    bytes += s.points.size() * sizeof(Point) +
             s.source_indices.size() * sizeof(size_t) +
             (s.chargeable.size() + 7) / 8;  // packed bitmask
  }
  return bytes;
}

uint64_t TrieIndex::StructureDigest() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix_bytes = [&h](const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  auto mix = [&](const auto& vec) {
    const uint64_t n = vec.size();
    mix_bytes(&n, sizeof(n));
    if (!vec.empty()) mix_bytes(vec.data(), vec.size() * sizeof(vec[0]));
  };
  mix(xlo_); mix(ylo_); mix(xhi_); mix(yhi_);
  mix(level_);
  mix(first_child_); mix(child_count_);
  mix(items_begin_); mix(items_end_);
  mix(src_lo_); mix(src_hi_);
  mix(chargeable_);
  mix(items_);
  return h;
}

}  // namespace dita
