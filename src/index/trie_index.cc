#include "index/trie_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "index/str_tile.h"
#include "util/logging.h"

namespace dita {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Status TrieIndex::Build(std::vector<Trajectory> trajectories,
                        const Options& options) {
  if (options.align_fanout < 2 || options.pivot_fanout < 2) {
    return Status::InvalidArgument("trie fanouts must be at least 2");
  }
  if (options.leaf_capacity < 1) {
    return Status::InvalidArgument("leaf capacity must be at least 1");
  }
  for (const Trajectory& t : trajectories) {
    if (t.empty()) return Status::InvalidArgument("empty trajectory in build set");
  }
  options_ = options;
  trajectories_ = std::move(trajectories);
  sequences_.clear();
  sequences_.reserve(trajectories_.size());
  for (const Trajectory& t : trajectories_) {
    sequences_.push_back(
        BuildIndexingSequence(t, options_.num_pivots, options_.strategy));
  }

  nodes_.clear();
  nodes_.push_back(Node{});  // root, level -1
  root_ = 0;
  std::vector<uint32_t> all(trajectories_.size());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  BuildNode(root_, std::move(all), /*level=*/-1);
  return Status::OK();
}

void TrieIndex::BuildNode(uint32_t node_idx, std::vector<uint32_t> members,
                          int level) {
  const int num_levels = static_cast<int>(options_.num_pivots) + 2;
  const int child_level = level + 1;
  // Leaf when all indexing levels are consumed or the population is small.
  if (child_level >= num_levels || members.size() <= options_.leaf_capacity) {
    nodes_[node_idx].items = std::move(members);
    return;
  }

  const size_t fanout =
      child_level < 2 ? options_.align_fanout : options_.pivot_fanout;
  auto level_point = [&](uint32_t traj_pos) -> Point {
    return sequences_[traj_pos].points[static_cast<size_t>(child_level)];
  };

  for (auto& child_members : StrTile(std::move(members), level_point, fanout)) {
    Node child;
    child.level = child_level;
    child.src_lo = std::numeric_limits<size_t>::max();
    child.src_hi = 0;
    for (uint32_t pos : child_members) {
      child.mbr.Expand(level_point(pos));
      const size_t src =
          sequences_[pos].source_indices[static_cast<size_t>(child_level)];
      child.src_lo = std::min(child.src_lo, src);
      child.src_hi = std::max(child.src_hi, src);
      if (!sequences_[pos].chargeable[static_cast<size_t>(child_level)]) {
        child.chargeable = false;
      }
    }
    nodes_.push_back(std::move(child));
    const uint32_t child_idx = static_cast<uint32_t>(nodes_.size() - 1);
    nodes_[node_idx].children.push_back(child_idx);
    BuildNode(child_idx, std::move(child_members), child_level);
  }
}

double TrieIndex::SuffixMinDist(const Trajectory& q, size_t suffix_start,
                                const MBR& mbr, double limit,
                                size_t* next_suffix_start) const {
  const auto& pts = q.points();
  double best = kInf;
  size_t first_within = pts.size();
  for (size_t j = suffix_start; j < pts.size(); ++j) {
    const double d = mbr.MinDist(pts[j]);
    best = std::min(best, d);
    if (d <= limit && first_within == pts.size()) first_within = j;
    if (best == 0.0 && first_within != pts.size()) break;  // cannot improve
  }
  // Lemma 5.1: query points before the first one within `limit` of this
  // pivot MBR cannot align to this pivot nor to any later one.
  if (next_suffix_start != nullptr) {
    *next_suffix_start = first_within == pts.size() ? suffix_start : first_within;
  }
  return best;
}

void TrieIndex::CollectCandidates(const SearchSpec& spec,
                                  std::vector<uint32_t>* out) const {
  DITA_CHECK(spec.query != nullptr);
  if (trajectories_.empty() || spec.query->empty()) return;
  double budget = spec.tau;
  if (spec.mode == PruneMode::kEditCount) budget = std::floor(spec.tau);
  // suffix_mbrs[j] covers query points [j, n). The buffer is reused across
  // calls on the same thread: CollectCandidates runs once per (query,
  // partition) inside hot search/join loops, and the per-call allocation
  // shows up in verification-dominated profiles.
  const auto& pts = spec.query->points();
  static thread_local std::vector<MBR> suffix_mbrs;
  suffix_mbrs.assign(pts.size() + 1, MBR{});
  for (size_t j = pts.size(); j-- > 0;) {
    suffix_mbrs[j] = suffix_mbrs[j + 1];
    suffix_mbrs[j].Expand(pts[j]);
  }
  SearchNode(root_, spec, suffix_mbrs, budget, /*suffix_start=*/0, out);
}

void TrieIndex::SearchNode(uint32_t node_idx, const SearchSpec& spec,
                           const std::vector<MBR>& suffix_mbrs, double budget,
                           size_t suffix_start,
                           std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_idx];
  const Trajectory& q = *spec.query;

  if (node.level >= 0) {
    switch (spec.mode) {
      case PruneMode::kAccumulate: {
        // Non-chargeable levels (padded repeats of an earlier source point)
        // must not contribute to the accumulated bound.
        if (!node.chargeable) break;
        if (spec.erp_gap != nullptr) {
          // ERP: a row may match the gap point; no alignment, no trimming.
          double d = node.mbr.MinDist(*spec.erp_gap);
          for (const Point& p : q.points()) {
            if (d == 0.0) break;
            d = std::min(d, node.mbr.MinDist(p));
          }
          if (d > budget) return;
          budget -= d;
          break;
        }
        double d;
        if (node.level == 0) {
          d = node.mbr.MinDist(q.front());
        } else if (node.level == 1) {
          d = node.mbr.MinDist(q.back());
        } else {
          // O(1) pre-test before the O(n) suffix scan.
          if (node.mbr.MinDist(suffix_mbrs[suffix_start]) > budget) return;
          size_t next = suffix_start;
          d = SuffixMinDist(q, suffix_start, node.mbr, budget, &next);
          suffix_start = next;
        }
        if (d > budget) return;
        budget -= d;
        break;
      }
      case PruneMode::kMax: {
        double d;
        if (node.level == 0) {
          d = node.mbr.MinDist(q.front());
        } else if (node.level == 1) {
          d = node.mbr.MinDist(q.back());
        } else {
          if (node.mbr.MinDist(suffix_mbrs[suffix_start]) > budget) return;
          size_t next = suffix_start;
          d = SuffixMinDist(q, suffix_start, node.mbr, budget, &next);
          suffix_start = next;
        }
        if (d > budget) return;  // budget stays tau for max-style distances
        break;
      }
      case PruneMode::kEditCount: {
        // A level whose indexing point cannot match any (eligible) query
        // point within epsilon forces at least one edit (Appendix A).
        double d = kInf;
        size_t j_lo = 0;
        size_t j_hi = q.size();
        if (node.level >= 2 && spec.lcss_delta >= 0) {
          // LCSS index constraint: pivot at source index s may only match
          // query indices within delta of it.
          const size_t delta = static_cast<size_t>(spec.lcss_delta);
          j_lo = node.src_lo > delta ? node.src_lo - delta : 0;
          j_hi = std::min(q.size(), node.src_hi + delta + 1);
        }
        for (size_t j = j_lo; j < j_hi; ++j) {
          d = std::min(d, node.mbr.MinDist(q[j]));
          if (d == 0.0) break;
        }
        if (d > spec.epsilon && node.chargeable) budget -= 1.0;
        if (budget < 0.0) return;
        break;
      }
    }
  }

  if (node.children.empty()) {
    out->insert(out->end(), node.items.begin(), node.items.end());
    return;
  }
  for (uint32_t child : node.children) {
    SearchNode(child, spec, suffix_mbrs, budget, suffix_start, out);
  }
}

size_t TrieIndex::ByteSize() const {
  size_t bytes = nodes_.size() * sizeof(Node);
  for (const Node& n : nodes_) {
    bytes += n.children.size() * sizeof(uint32_t) + n.items.size() * sizeof(uint32_t);
  }
  for (const IndexingSequence& s : sequences_) {
    bytes += s.points.size() * sizeof(Point) + s.source_indices.size() * sizeof(size_t);
  }
  return bytes;
}

}  // namespace dita
