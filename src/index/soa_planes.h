#ifndef DITA_INDEX_SOA_PLANES_H_
#define DITA_INDEX_SOA_PLANES_H_

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/mbr.h"
#include "geom/point.h"

namespace dita {

/// Distance primitives for rectangles stored as SoA planes (parallel
/// xlo/ylo/xhi/yhi arrays). Each is the exact expression of the MBR-class
/// counterpart, so flat traversals and MBR-based reference code agree
/// bitwise.

/// MBR::MinDist(Point) over plane scalars.
inline double PlaneMinDist(double xlo, double ylo, double xhi, double yhi,
                           const Point& p) {
  const double dx = std::max({xlo - p.x, 0.0, p.x - xhi});
  const double dy = std::max({ylo - p.y, 0.0, p.y - yhi});
  return std::sqrt(dx * dx + dy * dy);
}

/// The radicand of PlaneMinDist — the same expression minus the sqrt.
/// Because correctly-rounded sqrt is monotone, minimising the radicand over
/// a scan and taking one sqrt at the end yields the bit-identical result to
/// minimising PlaneMinDist per element: sqrt(min dsq) == min sqrt(dsq).
/// Hot scans (query-suffix MinDist, edit-window MinDist) use this to keep
/// the sqrt off the loop-carried min dependency.
inline double PlaneMinDistSq(double xlo, double ylo, double xhi, double yhi,
                             const Point& p) {
  const double dx = std::max({xlo - p.x, 0.0, p.x - xhi});
  const double dy = std::max({ylo - p.y, 0.0, p.y - yhi});
  return dx * dx + dy * dy;
}

/// MBR::MinDist(MBR) over plane scalars, including the empty-rectangle
/// convention (infinite distance).
inline double PlaneMinDistRect(double xlo, double ylo, double xhi, double yhi,
                               const MBR& other) {
  if (other.empty()) return std::numeric_limits<double>::infinity();
  const double dx = std::max({xlo - other.hi().x, 0.0, other.lo().x - xhi});
  const double dy = std::max({ylo - other.hi().y, 0.0, other.lo().y - yhi});
  return std::sqrt(dx * dx + dy * dy);
}

/// MBR::Intersects over plane scalars (borders inclusive; empty rectangles
/// intersect nothing).
inline bool PlaneIntersects(double xlo, double ylo, double xhi, double yhi,
                            const MBR& other) {
  if (other.empty()) return false;
  return !(other.lo().x > xhi || other.hi().x < xlo || other.lo().y > yhi ||
           other.hi().y < ylo);
}

}  // namespace dita

#endif  // DITA_INDEX_SOA_PLANES_H_
