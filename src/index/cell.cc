#include "index/cell.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dita {

CellSummary CompressToCells(const Trajectory& t, double side) {
  CellSummary summary;
  summary.side = side;
  const double half = side / 2.0;
  for (const Point& p : t.points()) {
    bool placed = false;
    for (auto& cell : summary.cells) {
      if (std::abs(p.x - cell.center.x) <= half &&
          std::abs(p.y - cell.center.y) <= half) {
        ++cell.count;
        placed = true;
        break;
      }
    }
    if (!placed) summary.cells.push_back({p, 1});
  }
  return summary;
}

double CellDistance(const CellSummary::Cell& a, double side_a,
                    const CellSummary::Cell& b, double side_b) {
  const double reach = side_a / 2.0 + side_b / 2.0;
  const double dx = std::max(0.0, std::abs(a.center.x - b.center.x) - reach);
  const double dy = std::max(0.0, std::abs(a.center.y - b.center.y) - reach);
  return std::sqrt(dx * dx + dy * dy);
}

namespace {

/// Bounding box of the other summary's cell centers — the per-query
/// invariant hoisted out of the per-cell scan. Any cell's min distance to
/// the summary is at least its (reach-deflated) distance to this box.
struct CenterBox {
  double xlo = 0.0, xhi = 0.0, ylo = 0.0, yhi = 0.0;
  bool empty = true;
};

CenterBox BoxOf(const CellSummary& q) {
  CenterBox b;
  for (const auto& o : q.cells) {
    if (b.empty) {
      b = {o.center.x, o.center.x, o.center.y, o.center.y, false};
    } else {
      b.xlo = std::min(b.xlo, o.center.x);
      b.xhi = std::max(b.xhi, o.center.x);
      b.ylo = std::min(b.ylo, o.center.y);
      b.yhi = std::max(b.yhi, o.center.y);
    }
  }
  return b;
}

/// Squared lower bound on MinDistSqToCells: every center of `q` lies inside
/// `box`, so |c.x - o.x| >= dist(c.x, [xlo, xhi]) for every o, and the
/// per-axis reach deflation carries through.
double BoxLowerBoundSq(const CellSummary::Cell& c, double reach,
                       const CenterBox& box) {
  const double gx =
      std::max(0.0, std::max(box.xlo - c.center.x, c.center.x - box.xhi));
  const double gy =
      std::max(0.0, std::max(box.ylo - c.center.y, c.center.y - box.yhi));
  const double dx = std::max(0.0, gx - reach);
  const double dy = std::max(0.0, gy - reach);
  return dx * dx + dy * dy;
}

/// Min squared cell distance from `c` to `other`'s cells. Works entirely in
/// squared space: sqrt is monotone and correctly rounded, so one sqrt of
/// the final minimum is bit-identical to the old per-pair-sqrt scan.
double MinDistSqToCells(const CellSummary::Cell& c, double reach,
                        const CellSummary& other) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& o : other.cells) {
    const double dx = std::max(0.0, std::abs(c.center.x - o.center.x) - reach);
    const double dy = std::max(0.0, std::abs(c.center.y - o.center.y) - reach);
    best = std::min(best, dx * dx + dy * dy);
    if (best == 0.0) break;
  }
  return best;
}

}  // namespace

double CellLowerBoundDtw(const CellSummary& t, const CellSummary& q,
                         double abandon_above) {
  const double reach = t.side / 2.0 + q.side / 2.0;
  const CenterBox box = BoxOf(q);
  double sum = 0.0;
  for (const auto& c : t.cells) {
    if (!box.empty) {
      // Dilated-rect pre-test: if even the box bound pushes the partial sum
      // past the abandon threshold, the exact scan can only return more.
      // The early return is still a valid lower bound (remaining cells
      // contribute >= 0), and the prune decision matches the exact scan:
      // both sides exceed `abandon_above`.
      const double quick = sum + std::sqrt(BoxLowerBoundSq(c, reach, box)) *
                                     static_cast<double>(c.count);
      if (quick > abandon_above) return quick;
    }
    sum += std::sqrt(MinDistSqToCells(c, reach, q)) *
           static_cast<double>(c.count);
    if (sum > abandon_above) return sum;
  }
  return sum;
}

double CellLowerBoundFrechet(const CellSummary& t, const CellSummary& q,
                             double abandon_above) {
  const double reach = t.side / 2.0 + q.side / 2.0;
  const CenterBox box = BoxOf(q);
  const double abandon2 = abandon_above * abandon_above;
  double worst2 = 0.0;
  for (const auto& c : t.cells) {
    if (!box.empty) {
      const double lb2 = BoxLowerBoundSq(c, reach, box);
      if (lb2 > abandon2) return std::sqrt(std::max(worst2, lb2));
    }
    worst2 = std::max(worst2, MinDistSqToCells(c, reach, q));
    if (worst2 > abandon2) return std::sqrt(worst2);
  }
  return std::sqrt(worst2);
}

}  // namespace dita
