#include "index/cell.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dita {

CellSummary CompressToCells(const Trajectory& t, double side) {
  CellSummary summary;
  summary.side = side;
  const double half = side / 2.0;
  for (const Point& p : t.points()) {
    bool placed = false;
    for (auto& cell : summary.cells) {
      if (std::abs(p.x - cell.center.x) <= half &&
          std::abs(p.y - cell.center.y) <= half) {
        ++cell.count;
        placed = true;
        break;
      }
    }
    if (!placed) summary.cells.push_back({p, 1});
  }
  return summary;
}

double CellDistance(const CellSummary::Cell& a, double side_a,
                    const CellSummary::Cell& b, double side_b) {
  const double reach = side_a / 2.0 + side_b / 2.0;
  const double dx = std::max(0.0, std::abs(a.center.x - b.center.x) - reach);
  const double dy = std::max(0.0, std::abs(a.center.y - b.center.y) - reach);
  return std::sqrt(dx * dx + dy * dy);
}

namespace {

double MinDistToCells(const CellSummary::Cell& c, double side,
                      const CellSummary& other) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& o : other.cells) {
    best = std::min(best, CellDistance(c, side, o, other.side));
    if (best == 0.0) break;
  }
  return best;
}

}  // namespace

double CellLowerBoundDtw(const CellSummary& t, const CellSummary& q,
                         double abandon_above) {
  double sum = 0.0;
  for (const auto& c : t.cells) {
    sum += MinDistToCells(c, t.side, q) * c.count;
    if (sum > abandon_above) return sum;
  }
  return sum;
}

double CellLowerBoundFrechet(const CellSummary& t, const CellSummary& q) {
  double worst = 0.0;
  for (const auto& c : t.cells) {
    worst = std::max(worst, MinDistToCells(c, t.side, q));
  }
  return worst;
}

}  // namespace dita
