#ifndef DITA_INDEX_TRIE_INDEX_H_
#define DITA_INDEX_TRIE_INDEX_H_

#include <cstdint>
#include <vector>

#include "distance/distance.h"
#include "geom/trajectory.h"
#include "index/pivot.h"
#include "index/signature.h"
#include "util/query_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dita {

/// DITA's local index (§4.2.3): a (K+2)-level trie of MBRs over each
/// trajectory's indexing sequence (first point, last point, K pivots). The
/// index is clustered — trajectories are stored inside it, aligned with the
/// leaves — so candidates are verified without an extra lookup (a point the
/// paper stresses against DFT's non-clustered design).
///
/// The trie is stored flat (DESIGN.md §5c), not as a pointer graph: nodes
/// are numbered in BFS order so every node's children occupy a contiguous
/// id range, per-node MBRs live in SoA planes (xlo/ylo/xhi/yhi arrays that
/// sibling scans walk sequentially), and leaf members are spans into one
/// global items array laid out in DFS order. CollectCandidates is an
/// iterative, allocation-free traversal over these arrays; the recursive
/// formulation is kept as CollectCandidatesReference, the equivalence
/// oracle for tests. CollectCandidatesBatch (DESIGN.md §5f) walks the same
/// arrays once for a whole group of queries, sharing sibling MBR loads and
/// group-level prune tests across the batch while emitting per-query
/// candidate vectors bit-identical to the single-query path.
class TrieIndex {
 public:
  struct Options {
    /// K, the number of pivot points per trajectory.
    size_t num_pivots = 4;
    /// N_L for the two align levels (first/last point).
    size_t align_fanout = 32;
    /// N_L for the K pivot levels; the paper uses a smaller fanout at the
    /// bottom where fewer trajectories remain.
    size_t pivot_fanout = 16;
    /// Stop splitting a node with at most this many trajectories
    /// (Appendix B: "too few trajectories (by default 16)").
    size_t leaf_capacity = 16;
    PivotStrategy strategy = PivotStrategy::kNeighborDistance;
  };

  /// Filtering request. `tau` is interpreted per `mode`:
  /// kAccumulate — remaining distance budget, reduced level by level;
  /// kMax — fixed per-level bound; kEditCount — edit budget, where a level
  /// farther than `epsilon` from the query costs one edit. `lcss_delta >= 0`
  /// additionally restricts pivot levels to the query index window allowed
  /// by LCSS's |i - j| <= delta constraint.
  struct SearchSpec {
    const Trajectory* query = nullptr;
    double tau = 0.0;
    PruneMode mode = PruneMode::kAccumulate;
    double epsilon = 0.0;
    int lcss_delta = -1;
    /// ERP only: the gap point g. When set, every level's bound becomes
    /// min(MinDist(Q, MBR), MinDist(g, MBR)) — a row of T may match the gap
    /// instead of a query point — and endpoint alignment and suffix
    /// trimming are disabled (gap matches consume no query points).
    const Point* erp_gap = nullptr;
    /// Optional cooperative stop token. CollectCandidates checkpoints it
    /// every few hundred node visits and charges emitted candidates against
    /// its budget; on stop the traversal abandons the remaining subtrees
    /// (the partial output is discarded by the caller, never mixed into
    /// results). The reference traversal ignores it — it is the oracle.
    QueryContext* ctx = nullptr;
  };

  /// Per-probe traversal counters, filled by CollectCandidates when a
  /// non-null pointer is passed. `pruned_members[l]` counts trajectories
  /// eliminated by a failed node test at trie level l (the whole pruned
  /// subtree's membership), so the filter funnel can report survivors after
  /// each level: population − Σ_{l' <= l} pruned_members[l'].
  struct ProbeStats {
    uint64_t nodes_visited = 0;
    uint64_t nodes_pruned = 0;
    std::vector<uint64_t> pruned_members;  // indexed by level, num_levels()

    void Reset(size_t num_levels) {
      nodes_visited = 0;
      nodes_pruned = 0;
      pruned_members.assign(num_levels, 0);
    }
    void Merge(const ProbeStats& o) {
      nodes_visited += o.nodes_visited;
      nodes_pruned += o.nodes_pruned;
      if (pruned_members.size() < o.pruned_members.size()) {
        pruned_members.resize(o.pruned_members.size(), 0);
      }
      for (size_t l = 0; l < o.pruned_members.size(); ++l) {
        pruned_members[l] += o.pruned_members[l];
      }
    }
  };

 private:
  /// A traversal frame: a node whose own level test already passed, with
  /// the budget and query-suffix start that survive it (Lemma 5.1).
  struct Frame {
    uint32_t node;
    uint32_t suffix_start;
    double budget;
  };

  /// One batch member's per-path state, the (budget, suffix_start) pair a
  /// Frame carries in the single-query traversal. Batch frames store one of
  /// these per still-alive member, packed in alive-bit rank order inside a
  /// per-traversal arena.
  struct QueryState {
    double budget;
    uint32_t suffix_start;
  };

  /// A batched traversal frame: a node that passed for at least one member,
  /// the bitset of members it passed for, and the offset of their packed
  /// QueryStates in the traversal's state arena.
  struct BatchFrame {
    uint32_t node;
    uint32_t state_off;
    uint64_t alive;
  };

  /// Per-member geometry the fast batched traversal reads in its inner
  /// loops, resolved once per group: SoA copies of the query points (what
  /// the vectorized suffix scan consumes), the member's suffix-MBR table,
  /// and the front/back points the two align levels test. Pointers alias
  /// the group's Scratch arenas, which do not grow during a traversal.
  struct MemberRef {
    const double* xs = nullptr;
    const double* ys = nullptr;
    const MBR* smbrs = nullptr;
    uint32_t n = 0;
    double fx = 0.0, fy = 0.0;  // query front point
    double bx = 0.0, by = 0.0;  // query back point
  };

 public:
  /// Reusable traversal scratch shared by CollectCandidates and
  /// CollectCandidatesBatch. This replaces the function-local
  /// `static thread_local` buffers the single-query path used to hide:
  /// ownership is now explicit, so callers can hold one scratch per worker,
  /// measure it (ByteSize), and Release() it between bursts instead of
  /// every thread retaining the high-water mark of its largest query until
  /// thread exit. Passing nullptr to the traversals falls back to
  /// ThreadLocal(), preserving the old zero-ceremony behavior.
  class Scratch {
   public:
    Scratch() = default;
    Scratch(const Scratch&) = delete;
    Scratch& operator=(const Scratch&) = delete;

    /// The per-thread default instance used when no scratch is passed.
    static Scratch& ThreadLocal();

    /// Heap bytes currently retained across all buffers.
    size_t ByteSize() const;

    /// Frees every buffer (ByteSize drops to zero); the next traversal
    /// re-grows them from scratch.
    void Release();

    /// Grow-once arena of per-member dilated query signatures, used by the
    /// engine's batched search to avoid a per-batch allocation (DESIGN.md
    /// §5g). Counted by ByteSize and freed by Release like the traversal
    /// buffers.
    std::vector<SigBits>& DilatedSigs() { return dsigs; }

   private:
    friend class TrieIndex;

    // Single-query traversal: suffix_mbrs[j] covers query points [j, n).
    std::vector<MBR> suffix_mbrs;
    std::vector<Frame> stack;
    std::vector<Frame> survivors;

    // Batched traversal. batch_mbrs concatenates every member's suffix-MBR
    // table (mbr_off indexes it); states is the monotone per-traversal
    // QueryState arena BatchFrames point into.
    std::vector<MBR> batch_mbrs;
    std::vector<MBR> whole_mbrs;  // per member: all points (+ ERP gap)
    std::vector<BatchFrame> bstack;
    std::vector<BatchFrame> bsurvivors;
    std::vector<QueryState> states;
    std::vector<QueryState> tmp_states;
    std::vector<QueryState> frame_states;  // dense by member, one frame
    std::vector<uint32_t> mbr_off;
    std::vector<uint32_t> order;   // member order, grouped by first point
    std::vector<uint32_t> visits;  // per member, since last ctx checkpoint
    // Fast-path lanes: SoA query points (concatenated per member, the
    // vectorized suffix scan's input) and the resolved per-member geometry.
    std::vector<double> qx;
    std::vector<double> qy;
    std::vector<MemberRef> refs;
    std::vector<uint64_t> keys;  // Morton sort keys (index in the low bits)
    std::vector<double> cdist;   // per-sibling distances, one frame at a time
    std::vector<SigBits> dsigs;  // per-member dilated sketches (engine batch)
  };

  /// One member of a batched traversal. All members of one
  /// CollectCandidatesBatch call must share the spec fields that pick the
  /// pruning algebra (mode, epsilon, lcss_delta, erp_gap); query, tau, ctx
  /// and the out/stats sinks are per member. `stats`, when non-null, must be
  /// Reset(num_levels()) by the caller and receives exactly the counters a
  /// single-query CollectCandidates call would have produced.
  struct BatchQuery {
    SearchSpec spec;
    std::vector<uint32_t>* out = nullptr;
    ProbeStats* stats = nullptr;
  };

  /// Members per shared-traversal group; the alive set is a uint64 bitset,
  /// so 64 is the ceiling. Larger batches are split into groups of this
  /// size after the Morton sort. Kept well below the bitset ceiling: the
  /// group bound only pays while the members' union stays spatially tight,
  /// and a big group's union rectangle covers so much area that its prune
  /// tests never fire while their per-frame upkeep still gets paid
  /// (measured in BENCH_micro_filter's batch sweep).
  static constexpr size_t kMaxBatchGroup = 8;

  /// Minimum build items per pool thread before Build fans work out to the
  /// pool. Below this the chunk dispatch and cross-thread cache traffic
  /// cost more than the extraction loop they split — measured at bench
  /// scale, where a 4096-trajectory parallel build lost ~25% to the serial
  /// one — so small builds (every partition-local trie at default N_G)
  /// always take the serial path and `build.threads > 1` can no longer
  /// regress them.
  static constexpr size_t kMinBuildItemsPerThread = 4096;

  TrieIndex() = default;

  /// Builds the trie over `trajectories`, which the index takes ownership
  /// of. When `pool` is non-null and the build is large enough to amortize
  /// fan-out (see kMinBuildItemsPerThread), indexing-sequence extraction and
  /// the STR tiling sorts are chunked across it; the result is identical to
  /// the serial build (chunk boundaries only partition slot-indexed writes).
  /// Helper-thread CPU seconds land in `*offloaded_seconds` when provided,
  /// so builds running inside a cluster task can charge them back
  /// (Cluster::ChargeCurrentTask).
  Status Build(std::vector<Trajectory> trajectories, const Options& options,
               ThreadPool* pool = nullptr, double* offloaded_seconds = nullptr);

  /// Appends the positions (into trajectories()) of every trajectory that
  /// survives the trie filter. Never drops a true answer (Lemmas 4.3 / 5.1).
  /// Iterative flat traversal; bit-identical output (content and order) to
  /// CollectCandidatesReference. With `stats` non-null the traversal also
  /// tallies visited/pruned nodes and pruned subtree membership per level
  /// (stats are *added* to, call ProbeStats::Reset first); the stats == null
  /// hot path costs one predictable branch per tested node. `scratch` may be
  /// null (the per-thread default is used).
  void CollectCandidates(const SearchSpec& spec, std::vector<uint32_t>* out,
                         ProbeStats* stats = nullptr,
                         Scratch* scratch = nullptr) const;

  /// Collects candidates for a whole group of queries in one traversal
  /// (DESIGN.md §5f). Members are sorted by their query's first point and
  /// split into groups of kMaxBatchGroup; each group walks the trie once
  /// with a per-frame bitset of still-alive members, so sibling MBR planes
  /// are loaded once per node and a node provably too far from *every*
  /// alive member is pruned with a single group-level rectangle test.
  /// Per member, the emitted candidate vector, the ProbeStats counters, and
  /// the QueryContext charges are exactly those of a standalone
  /// CollectCandidates call; a member whose ctx stops mid-traversal is
  /// dropped from the alive sets without perturbing the others (its partial
  /// output must be discarded by the caller, as in the single-query path).
  void CollectCandidatesBatch(BatchQuery* queries, size_t count,
                              Scratch* scratch = nullptr) const;

  /// The recursive reference traversal — the pre-flattening implementation
  /// ported onto the flat arrays, kept as the oracle for the equivalence
  /// tests. Not used on hot paths.
  void CollectCandidatesReference(const SearchSpec& spec,
                                  std::vector<uint32_t>* out) const;

  const std::vector<Trajectory>& trajectories() const { return trajectories_; }
  const Trajectory& trajectory(uint32_t pos) const { return trajectories_[pos]; }
  size_t size() const { return trajectories_.size(); }

  size_t NodeCount() const { return level_.size(); }
  size_t ByteSize() const;
  const Options& options() const { return options_; }

  /// Trie levels: first point, last point, K pivots.
  size_t num_levels() const { return options_.num_pivots + 2; }

  /// Trajectories stored under node `n` (== the whole population at the
  /// root). Backs the funnel's pruned-member accounting.
  uint32_t SubtreeCount(uint32_t n) const { return subtree_count_[n]; }

  /// FNV-1a hash over every flat array (structure, MBR planes, spans,
  /// items). Two tries with equal digests were built identically; the
  /// parallel-vs-serial determinism tests compare digests.
  uint64_t StructureDigest() const;

 private:
  /// Evaluates node `n`'s level test for `spec`. Returns false when the
  /// subtree is pruned; otherwise updates *budget / *suffix_start with the
  /// values its children inherit. `suffix_mbrs` points at the query's
  /// suffix-MBR table (suffix_mbrs[j] covers query points [j, n)).
  bool TestNode(uint32_t n, const SearchSpec& spec, const MBR* suffix_mbrs,
                double* budget, uint32_t* suffix_start) const;

  /// Runs one group (<= kMaxBatchGroup members, given by `members` indices
  /// into `queries`) through the shared traversal. Sets up the per-member
  /// arenas, then dispatches to the specialized traversal for the two modes
  /// whose node test is a pure rectangle-distance gate (accumulate without
  /// an ERP gap, and max); edit-count and ERP keep the generic loop.
  void CollectGroup(BatchQuery* queries, const uint32_t* members,
                    size_t group_size, Scratch* s) const;

  /// The specialized shared traversal (DESIGN.md §5f): inlined node tests
  /// over the resolved MemberRef geometry, a vectorized suffix scan at the
  /// pivot levels, and a per-frame group bound that prunes a child for the
  /// whole group — or for an individual member, with one compare — before
  /// any per-member test runs. Emits bit-identical outputs to the generic
  /// loop (which in turn matches CollectCandidates member for member).
  void CollectGroupFast(BatchQuery* queries, const uint32_t* members,
                        size_t group_size, Scratch* s, uint64_t alive0,
                        bool any_ctx, bool any_stats, bool is_max) const;

  void SearchNodeReference(uint32_t n, const SearchSpec& spec,
                           const MBR* suffix_mbrs, double budget,
                           uint32_t suffix_start,
                           std::vector<uint32_t>* out) const;

  /// MinDist from the query's suffix [suffix_start, n) to node MBR `n`;
  /// also computes the next suffix start per Lemma 5.1 under threshold
  /// `limit`.
  double SuffixMinDist(const Trajectory& q, size_t suffix_start, uint32_t n,
                       double limit, size_t* next_suffix_start) const;

  Options options_;
  std::vector<Trajectory> trajectories_;
  std::vector<IndexingSequence> sequences_;  // parallel to trajectories_

  // --- Flat node arrays, BFS numbering (children contiguous). ---
  /// Per-node MBR planes. The root (node 0, level -1) stores an empty
  /// rectangle (+inf/-inf) but is never distance-tested.
  std::vector<double> xlo_, ylo_, xhi_, yhi_;
  /// Level of the node's MBR: 0 = first point, 1 = last point, 2 + i =
  /// pivot i; the root is -1.
  std::vector<int32_t> level_;
  /// Children of node n are nodes [first_child_[n], first_child_[n] +
  /// child_count_[n]); count 0 marks a leaf.
  std::vector<uint32_t> first_child_;
  std::vector<uint32_t> child_count_;
  /// Leaf members are items_[items_begin_[n] .. items_end_[n]); spans are
  /// assigned in DFS order so the traversal emits increasing ranges.
  std::vector<uint32_t> items_begin_;
  std::vector<uint32_t> items_end_;
  /// Source-index range of the grouped indexing points (pivot levels only;
  /// used by the LCSS delta-window restriction).
  std::vector<uint32_t> src_lo_;
  std::vector<uint32_t> src_hi_;
  /// 1 iff every member's indexing entry at this level references a source
  /// point not already used by an earlier level (padding repeats points for
  /// short trajectories). Accumulate/edit modes only charge chargeable
  /// levels to preserve the lower-bound property.
  std::vector<uint8_t> chargeable_;
  /// Trajectories stored in the subtree rooted at each node (derived from
  /// the leaf spans after the DFS pass; excluded from StructureDigest).
  std::vector<uint32_t> subtree_count_;
  /// All leaf members, DFS leaf order, member order within a leaf.
  std::vector<uint32_t> items_;
};

}  // namespace dita

#endif  // DITA_INDEX_TRIE_INDEX_H_
