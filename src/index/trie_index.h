#ifndef DITA_INDEX_TRIE_INDEX_H_
#define DITA_INDEX_TRIE_INDEX_H_

#include <cstdint>
#include <vector>

#include "distance/distance.h"
#include "geom/trajectory.h"
#include "index/pivot.h"
#include "util/query_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dita {

/// DITA's local index (§4.2.3): a (K+2)-level trie of MBRs over each
/// trajectory's indexing sequence (first point, last point, K pivots). The
/// index is clustered — trajectories are stored inside it, aligned with the
/// leaves — so candidates are verified without an extra lookup (a point the
/// paper stresses against DFT's non-clustered design).
///
/// The trie is stored flat (DESIGN.md §5c), not as a pointer graph: nodes
/// are numbered in BFS order so every node's children occupy a contiguous
/// id range, per-node MBRs live in SoA planes (xlo/ylo/xhi/yhi arrays that
/// sibling scans walk sequentially), and leaf members are spans into one
/// global items array laid out in DFS order. CollectCandidates is an
/// iterative, allocation-free traversal over these arrays; the recursive
/// formulation is kept as CollectCandidatesReference, the equivalence
/// oracle for tests.
class TrieIndex {
 public:
  struct Options {
    /// K, the number of pivot points per trajectory.
    size_t num_pivots = 4;
    /// N_L for the two align levels (first/last point).
    size_t align_fanout = 32;
    /// N_L for the K pivot levels; the paper uses a smaller fanout at the
    /// bottom where fewer trajectories remain.
    size_t pivot_fanout = 16;
    /// Stop splitting a node with at most this many trajectories
    /// (Appendix B: "too few trajectories (by default 16)").
    size_t leaf_capacity = 16;
    PivotStrategy strategy = PivotStrategy::kNeighborDistance;
  };

  /// Filtering request. `tau` is interpreted per `mode`:
  /// kAccumulate — remaining distance budget, reduced level by level;
  /// kMax — fixed per-level bound; kEditCount — edit budget, where a level
  /// farther than `epsilon` from the query costs one edit. `lcss_delta >= 0`
  /// additionally restricts pivot levels to the query index window allowed
  /// by LCSS's |i - j| <= delta constraint.
  struct SearchSpec {
    const Trajectory* query = nullptr;
    double tau = 0.0;
    PruneMode mode = PruneMode::kAccumulate;
    double epsilon = 0.0;
    int lcss_delta = -1;
    /// ERP only: the gap point g. When set, every level's bound becomes
    /// min(MinDist(Q, MBR), MinDist(g, MBR)) — a row of T may match the gap
    /// instead of a query point — and endpoint alignment and suffix
    /// trimming are disabled (gap matches consume no query points).
    const Point* erp_gap = nullptr;
    /// Optional cooperative stop token. CollectCandidates checkpoints it
    /// every few hundred node visits and charges emitted candidates against
    /// its budget; on stop the traversal abandons the remaining subtrees
    /// (the partial output is discarded by the caller, never mixed into
    /// results). The reference traversal ignores it — it is the oracle.
    QueryContext* ctx = nullptr;
  };

  /// Per-probe traversal counters, filled by CollectCandidates when a
  /// non-null pointer is passed. `pruned_members[l]` counts trajectories
  /// eliminated by a failed node test at trie level l (the whole pruned
  /// subtree's membership), so the filter funnel can report survivors after
  /// each level: population − Σ_{l' <= l} pruned_members[l'].
  struct ProbeStats {
    uint64_t nodes_visited = 0;
    uint64_t nodes_pruned = 0;
    std::vector<uint64_t> pruned_members;  // indexed by level, num_levels()

    void Reset(size_t num_levels) {
      nodes_visited = 0;
      nodes_pruned = 0;
      pruned_members.assign(num_levels, 0);
    }
    void Merge(const ProbeStats& o) {
      nodes_visited += o.nodes_visited;
      nodes_pruned += o.nodes_pruned;
      if (pruned_members.size() < o.pruned_members.size()) {
        pruned_members.resize(o.pruned_members.size(), 0);
      }
      for (size_t l = 0; l < o.pruned_members.size(); ++l) {
        pruned_members[l] += o.pruned_members[l];
      }
    }
  };

  TrieIndex() = default;

  /// Builds the trie over `trajectories`, which the index takes ownership
  /// of. When `pool` is non-null, indexing-sequence extraction and the STR
  /// tiling sorts are chunked across it; the result is identical to the
  /// serial build (chunk boundaries only partition slot-indexed writes).
  /// Helper-thread CPU seconds land in `*offloaded_seconds` when provided,
  /// so builds running inside a cluster task can charge them back
  /// (Cluster::ChargeCurrentTask).
  Status Build(std::vector<Trajectory> trajectories, const Options& options,
               ThreadPool* pool = nullptr, double* offloaded_seconds = nullptr);

  /// Appends the positions (into trajectories()) of every trajectory that
  /// survives the trie filter. Never drops a true answer (Lemmas 4.3 / 5.1).
  /// Iterative flat traversal; bit-identical output (content and order) to
  /// CollectCandidatesReference. With `stats` non-null the traversal also
  /// tallies visited/pruned nodes and pruned subtree membership per level
  /// (stats are *added* to, call ProbeStats::Reset first); the stats == null
  /// hot path costs one predictable branch per tested node.
  void CollectCandidates(const SearchSpec& spec, std::vector<uint32_t>* out,
                         ProbeStats* stats = nullptr) const;

  /// The recursive reference traversal — the pre-flattening implementation
  /// ported onto the flat arrays, kept as the oracle for the equivalence
  /// tests. Not used on hot paths.
  void CollectCandidatesReference(const SearchSpec& spec,
                                  std::vector<uint32_t>* out) const;

  const std::vector<Trajectory>& trajectories() const { return trajectories_; }
  const Trajectory& trajectory(uint32_t pos) const { return trajectories_[pos]; }
  size_t size() const { return trajectories_.size(); }

  size_t NodeCount() const { return level_.size(); }
  size_t ByteSize() const;
  const Options& options() const { return options_; }

  /// Trie levels: first point, last point, K pivots.
  size_t num_levels() const { return options_.num_pivots + 2; }

  /// Trajectories stored under node `n` (== the whole population at the
  /// root). Backs the funnel's pruned-member accounting.
  uint32_t SubtreeCount(uint32_t n) const { return subtree_count_[n]; }

  /// FNV-1a hash over every flat array (structure, MBR planes, spans,
  /// items). Two tries with equal digests were built identically; the
  /// parallel-vs-serial determinism tests compare digests.
  uint64_t StructureDigest() const;

 private:
  /// A traversal frame: a node whose own level test already passed, with
  /// the budget and query-suffix start that survive it (Lemma 5.1).
  struct Frame {
    uint32_t node;
    uint32_t suffix_start;
    double budget;
  };

  /// Evaluates node `n`'s level test for `spec`. Returns false when the
  /// subtree is pruned; otherwise updates *budget / *suffix_start with the
  /// values its children inherit.
  bool TestNode(uint32_t n, const SearchSpec& spec,
                const std::vector<MBR>& suffix_mbrs, double* budget,
                uint32_t* suffix_start) const;

  void SearchNodeReference(uint32_t n, const SearchSpec& spec,
                           const std::vector<MBR>& suffix_mbrs, double budget,
                           uint32_t suffix_start,
                           std::vector<uint32_t>* out) const;

  /// MinDist from the query's suffix [suffix_start, n) to node MBR `n`;
  /// also computes the next suffix start per Lemma 5.1 under threshold
  /// `limit`.
  double SuffixMinDist(const Trajectory& q, size_t suffix_start, uint32_t n,
                       double limit, size_t* next_suffix_start) const;

  Options options_;
  std::vector<Trajectory> trajectories_;
  std::vector<IndexingSequence> sequences_;  // parallel to trajectories_

  // --- Flat node arrays, BFS numbering (children contiguous). ---
  /// Per-node MBR planes. The root (node 0, level -1) stores an empty
  /// rectangle (+inf/-inf) but is never distance-tested.
  std::vector<double> xlo_, ylo_, xhi_, yhi_;
  /// Level of the node's MBR: 0 = first point, 1 = last point, 2 + i =
  /// pivot i; the root is -1.
  std::vector<int32_t> level_;
  /// Children of node n are nodes [first_child_[n], first_child_[n] +
  /// child_count_[n]); count 0 marks a leaf.
  std::vector<uint32_t> first_child_;
  std::vector<uint32_t> child_count_;
  /// Leaf members are items_[items_begin_[n] .. items_end_[n]); spans are
  /// assigned in DFS order so the traversal emits increasing ranges.
  std::vector<uint32_t> items_begin_;
  std::vector<uint32_t> items_end_;
  /// Source-index range of the grouped indexing points (pivot levels only;
  /// used by the LCSS delta-window restriction).
  std::vector<uint32_t> src_lo_;
  std::vector<uint32_t> src_hi_;
  /// 1 iff every member's indexing entry at this level references a source
  /// point not already used by an earlier level (padding repeats points for
  /// short trajectories). Accumulate/edit modes only charge chargeable
  /// levels to preserve the lower-bound property.
  std::vector<uint8_t> chargeable_;
  /// Trajectories stored in the subtree rooted at each node (derived from
  /// the leaf spans after the DFS pass; excluded from StructureDigest).
  std::vector<uint32_t> subtree_count_;
  /// All leaf members, DFS leaf order, member order within a leaf.
  std::vector<uint32_t> items_;
};

}  // namespace dita

#endif  // DITA_INDEX_TRIE_INDEX_H_
