#ifndef DITA_INDEX_TRIE_INDEX_H_
#define DITA_INDEX_TRIE_INDEX_H_

#include <cstdint>
#include <vector>

#include "distance/distance.h"
#include "geom/trajectory.h"
#include "index/pivot.h"
#include "util/status.h"

namespace dita {

/// DITA's local index (§4.2.3): a (K+2)-level trie of MBRs over each
/// trajectory's indexing sequence (first point, last point, K pivots). The
/// index is clustered — trajectories are stored inside it, aligned with the
/// leaves — so candidates are verified without an extra lookup (a point the
/// paper stresses against DFT's non-clustered design).
class TrieIndex {
 public:
  struct Options {
    /// K, the number of pivot points per trajectory.
    size_t num_pivots = 4;
    /// N_L for the two align levels (first/last point).
    size_t align_fanout = 32;
    /// N_L for the K pivot levels; the paper uses a smaller fanout at the
    /// bottom where fewer trajectories remain.
    size_t pivot_fanout = 16;
    /// Stop splitting a node with at most this many trajectories
    /// (Appendix B: "too few trajectories (by default 16)").
    size_t leaf_capacity = 16;
    PivotStrategy strategy = PivotStrategy::kNeighborDistance;
  };

  /// Filtering request. `tau` is interpreted per `mode`:
  /// kAccumulate — remaining distance budget, reduced level by level;
  /// kMax — fixed per-level bound; kEditCount — edit budget, where a level
  /// farther than `epsilon` from the query costs one edit. `lcss_delta >= 0`
  /// additionally restricts pivot levels to the query index window allowed
  /// by LCSS's |i - j| <= delta constraint.
  struct SearchSpec {
    const Trajectory* query = nullptr;
    double tau = 0.0;
    PruneMode mode = PruneMode::kAccumulate;
    double epsilon = 0.0;
    int lcss_delta = -1;
    /// ERP only: the gap point g. When set, every level's bound becomes
    /// min(MinDist(Q, MBR), MinDist(g, MBR)) — a row of T may match the gap
    /// instead of a query point — and endpoint alignment and suffix
    /// trimming are disabled (gap matches consume no query points).
    const Point* erp_gap = nullptr;
  };

  TrieIndex() = default;

  /// Builds the trie over `trajectories`, which the index takes ownership of.
  Status Build(std::vector<Trajectory> trajectories, const Options& options);

  /// Appends the positions (into trajectories()) of every trajectory that
  /// survives the trie filter. Never drops a true answer (Lemmas 4.3 / 5.1).
  void CollectCandidates(const SearchSpec& spec, std::vector<uint32_t>* out) const;

  const std::vector<Trajectory>& trajectories() const { return trajectories_; }
  const Trajectory& trajectory(uint32_t pos) const { return trajectories_[pos]; }
  size_t size() const { return trajectories_.size(); }

  size_t NodeCount() const { return nodes_.size(); }
  size_t ByteSize() const;
  const Options& options() const { return options_; }

 private:
  struct Node {
    MBR mbr;
    /// Level of this node's MBR: 0 = first point, 1 = last point,
    /// 2 + i = pivot i. The root is level -1 with an empty MBR.
    int level = -1;
    /// Source-index range of the grouped indexing points (pivot levels only;
    /// used by the LCSS delta-window restriction).
    size_t src_lo = 0;
    size_t src_hi = 0;
    /// True iff every member's indexing entry at this level references a
    /// source point not already used by an earlier level (padding repeats
    /// points for short trajectories). Accumulate/edit modes only charge
    /// chargeable levels to preserve the lower-bound property.
    bool chargeable = true;
    std::vector<uint32_t> children;  // node indices; empty for leaves
    std::vector<uint32_t> items;     // trajectory positions; leaves only
  };

  void BuildNode(uint32_t node_idx, std::vector<uint32_t> members, int level);

  /// `suffix_mbrs[j]` bounds query points [j, n): MinDist(node MBR, suffix
  /// MBR) lower-bounds the per-point suffix minimum in O(1), letting most
  /// pruned pivot nodes skip the O(n) scan entirely.
  void SearchNode(uint32_t node_idx, const SearchSpec& spec,
                  const std::vector<MBR>& suffix_mbrs, double budget,
                  size_t suffix_start, std::vector<uint32_t>* out) const;

  /// MinDist from the query's suffix [suffix_start, n) to `mbr`; also
  /// computes the next suffix start per Lemma 5.1 under threshold `limit`.
  double SuffixMinDist(const Trajectory& q, size_t suffix_start, const MBR& mbr,
                       double limit, size_t* next_suffix_start) const;

  Options options_;
  std::vector<Trajectory> trajectories_;
  std::vector<IndexingSequence> sequences_;  // parallel to trajectories_
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
};

}  // namespace dita

#endif  // DITA_INDEX_TRIE_INDEX_H_
