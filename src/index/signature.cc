#include "index/signature.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace dita {
namespace {

/// Splitmix64 — the shingle hash behind the minhash minima.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Spreads a row mask `w` cells left and right (saturating at the grid
/// edge): the horizontal part of the dilation kernel.
uint16_t SpreadRow(uint16_t m, int w) {
  uint32_t v = m;
  for (int k = 0; k < w; ++k) v |= (v << 1) | (v >> 1);
  return static_cast<uint16_t>(v);
}

/// Guard band absorbing floating-point rounding in the quantization and
/// gap arithmetic: relative in tau and the cell sides, so it is negligible
/// against any real cell geometry but dominates ulp-level error. Same trick
/// as the kernels' SqThreshold guard (DESIGN.md §5a).
double GuardPad(const SigGrid& g, double tau) {
  return 1e-9 * (1.0 + tau + g.sx + g.sy);
}

}  // namespace

SigGrid SigGrid::For(const MBR& region) {
  SigGrid g;
  g.region = region;
  double w = region.hi().x - region.lo().x;
  double h = region.hi().y - region.lo().y;
  if (!(w > 0.0)) w = 1e-9;
  if (!(h > 0.0)) h = 1e-9;
  g.region = MBR(region.lo(), Point{region.lo().x + w, region.lo().y + h});
  g.sx = w / kSigDim;
  g.sy = h / kSigDim;
  return g;
}

int SigGrid::CellX(double x) const {
  const double f = std::floor((x - region.lo().x) / sx);
  if (!(f > 0.0)) return 0;  // clamp (also catches NaN)
  return std::min(kSigDim - 1, static_cast<int>(f));
}

int SigGrid::CellY(double y) const {
  const double f = std::floor((y - region.lo().y) / sy);
  if (!(f > 0.0)) return 0;
  return std::min(kSigDim - 1, static_cast<int>(f));
}

MBR SigGrid::CellRect(int ix, int iy) const {
  const Point lo{region.lo().x + ix * sx, region.lo().y + iy * sy};
  return MBR(lo, Point{lo.x + sx, lo.y + sy});
}

int SigBits::PopCount() const {
  int n = 0;
  for (uint64_t word : w) n += std::popcount(word);
  return n;
}

TrajSignature BuildSignature(const Trajectory& t, const SigGrid& g) {
  TrajSignature sig;
  sig.minhash.fill(std::numeric_limits<uint64_t>::max());
  if (!g.valid()) return sig;
  int prev_cell = -1;
  for (const Point& p : t.points()) {
    const int ix = g.CellX(p.x);
    const int iy = g.CellY(p.y);
    sig.bits.Set(ix, iy);
    const int cell = iy * kSigDim + ix;
    if (cell == prev_cell) continue;  // dedup consecutive duplicates
    // Shingle = (previous cell, cell) transition; the first cell shingles
    // against a sentinel so single-cell trajectories still hash.
    const uint64_t shingle =
        (static_cast<uint64_t>(prev_cell + 1) << 32) |
        static_cast<uint64_t>(cell);
    for (int i = 0; i < kSigMinhash; ++i) {
      const uint64_t h = Mix64(shingle ^ (0xa0761d6478bd642full * (i + 1)));
      sig.minhash[static_cast<size_t>(i)] =
          std::min(sig.minhash[static_cast<size_t>(i)], h);
    }
    prev_cell = cell;
  }
  return sig;
}

void AggregateSignature(const TrajSignature& member, TrajSignature* agg) {
  agg->bits.Or(member.bits);
  for (int i = 0; i < kSigMinhash; ++i) {
    agg->minhash[static_cast<size_t>(i)] =
        std::min(agg->minhash[static_cast<size_t>(i)],
                 member.minhash[static_cast<size_t>(i)]);
  }
}

SigBits Dilate(const SigBits& q, const SigGrid& g, double tau) {
  SigBits out;
  if (!g.valid() || q.Empty()) return out;
  const double pad = GuardPad(g, tau);
  const double tau2 = (tau + pad) * (tau + pad);
  // Row gap |j - j'| = d contributes gapy = max(d - 1, 0) * sy; within the
  // remaining budget the column gap allows |i - i'| up to dimax(d). The
  // bound is computed by direct evaluation of the inclusion criterion, so
  // there is no rounding direction to argue about beyond the guard band.
  for (int d = 0; d < kSigDim; ++d) {
    const double gapy = d <= 1 ? 0.0 : (d - 1) * g.sy;
    if (gapy * gapy > tau2) break;
    const double rem2 = tau2 - gapy * gapy;
    int dimax = 0;
    for (int di = 1; di < kSigDim; ++di) {
      const double gapx = (di - 1) * g.sx;
      if (gapx * gapx <= rem2) dimax = di;
    }
    for (int j = 0; j < kSigDim; ++j) {
      const uint16_t m = q.Row(j);
      if (m == 0) continue;
      const uint16_t s = SpreadRow(m, dimax);
      if (d == 0) {
        out.OrRow(j, s);
      } else {
        if (j + d < kSigDim) out.OrRow(j + d, s);
        if (j - d >= 0) out.OrRow(j - d, s);
      }
    }
  }
  return out;
}

SigBits DilateAcross(const SigBits& src, const SigGrid& src_grid,
                     const SigGrid& dst, double tau) {
  SigBits out;
  if (!src_grid.valid() || !dst.valid() || src.Empty()) return out;
  const double pad = GuardPad(dst, tau) + GuardPad(src_grid, 0.0);
  const double reach = tau + pad;
  for (int j = 0; j < kSigDim; ++j) {
    const uint16_t m = src.Row(j);
    if (m == 0) continue;
    for (int i = 0; i < kSigDim; ++i) {
      if ((m & (uint16_t{1} << i)) == 0) continue;
      const MBR rect = src_grid.CellRect(i, j);
      // Index window of dst cells whose rectangle could be within reach.
      const int xlo = dst.CellX(rect.lo().x - reach);
      const int xhi = dst.CellX(rect.hi().x + reach);
      const int ylo = dst.CellY(rect.lo().y - reach);
      const int yhi = dst.CellY(rect.hi().y + reach);
      for (int jy = ylo; jy <= yhi; ++jy) {
        for (int jx = xlo; jx <= xhi; ++jx) {
          if (dst.CellRect(jx, jy).MinDist(rect) <= reach) out.Set(jx, jy);
        }
      }
    }
  }
  return out;
}

double MinhashResemblance(const std::array<uint64_t, kSigMinhash>& a,
                          const std::array<uint64_t, kSigMinhash>& b) {
  int agree = 0;
  for (int i = 0; i < kSigMinhash; ++i) {
    if (a[static_cast<size_t>(i)] == b[static_cast<size_t>(i)]) ++agree;
  }
  return static_cast<double>(agree) / kSigMinhash;
}

}  // namespace dita
