#ifndef DITA_INDEX_SIGNATURE_H_
#define DITA_INDEX_SIGNATURE_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "geom/mbr.h"
#include "geom/trajectory.h"

namespace dita {

/// Level-0 sketch prefilter (ROADMAP item 3, DESIGN.md §5g): every indexed
/// trajectory carries a fixed-width bitset over the cells of a coarse grid
/// laid over the table's data region. The prune test is a *necessary*
/// condition — a query's bit set is dilated by tau (every cell within
/// rect-min-distance tau of some query cell) and a candidate whose bits are
/// not a subset of the dilated set provably cannot be within tau — so the
/// tier never drops a true answer. Minhash shingles ride along for join
/// cost estimation and answer-cache keys; they are never used to prune.

inline constexpr int kSigDim = 16;          // grid is kSigDim x kSigDim
inline constexpr int kSigWords = 4;         // 256 bits = 4 x uint64
inline constexpr int kSigMinhash = 8;       // shingle minima per signature

/// The quantization frame: a fixed world rectangle split into kSigDim x
/// kSigDim cells. Points outside the rectangle clamp onto its boundary
/// cells; clamping is the orthogonal projection onto a convex set, which is
/// 1-Lipschitz, so pairwise distances only shrink and every bound derived
/// from clamped points stays a valid lower bound (DESIGN.md §5g).
struct SigGrid {
  MBR region;
  double sx = 0.0;  // cell side along x
  double sy = 0.0;  // cell side along y

  /// Frame covering `region`; degenerate (zero-area) regions get a minimal
  /// positive extent so the grid stays well-defined.
  static SigGrid For(const MBR& region);

  bool valid() const { return sx > 0.0 && sy > 0.0; }

  int CellX(double x) const;
  int CellY(double y) const;

  /// World rectangle of cell (ix, iy).
  MBR CellRect(int ix, int iy) const;
};

/// 256-bit cell-occupancy set. Bit (iy * kSigDim + ix) is cell (ix, iy).
struct SigBits {
  std::array<uint64_t, kSigWords> w{};

  void Set(int ix, int iy) {
    const int bit = iy * kSigDim + ix;
    w[static_cast<size_t>(bit >> 6)] |= uint64_t{1} << (bit & 63);
  }
  bool Empty() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  /// this ⊆ o — the per-candidate prune test against a dilated query set.
  bool SubsetOf(const SigBits& o) const {
    return ((w[0] & ~o.w[0]) | (w[1] & ~o.w[1]) | (w[2] & ~o.w[2]) |
            (w[3] & ~o.w[3])) == 0;
  }
  /// this ∩ o ≠ ∅ — the partition-aggregate / join-pair prune test.
  bool Intersects(const SigBits& o) const {
    return ((w[0] & o.w[0]) | (w[1] & o.w[1]) | (w[2] & o.w[2]) |
            (w[3] & o.w[3])) != 0;
  }
  void Or(const SigBits& o) {
    for (int i = 0; i < kSigWords; ++i) w[i] |= o.w[i];
  }
  int PopCount() const;

  uint16_t Row(int iy) const {
    return static_cast<uint16_t>(w[static_cast<size_t>(iy >> 2)] >>
                                 ((iy & 3) * kSigDim));
  }
  void OrRow(int iy, uint16_t m) {
    w[static_cast<size_t>(iy >> 2)] |= uint64_t{m} << ((iy & 3) * kSigDim);
  }

  friend bool operator==(const SigBits&, const SigBits&) = default;
};

/// Identity element of component-wise minhash aggregation (the minhash of
/// an empty shingle set): every component at max, so min-folding members in
/// starts from a neutral value.
inline constexpr std::array<uint64_t, kSigMinhash> kEmptyMinhash = [] {
  std::array<uint64_t, kSigMinhash> a{};
  for (auto& v : a) v = ~uint64_t{0};
  return a;
}();

/// Per-trajectory sketch: the cell bitset (pruning) plus minhash shingle
/// minima (cost estimation / cache canonicalization only, never pruning).
struct TrajSignature {
  SigBits bits;
  std::array<uint64_t, kSigMinhash> minhash = kEmptyMinhash;
};

/// Quantizes `t` onto `g`: sets the cell bit of every (clamped) point and
/// minhashes the deduplicated cell-transition shingles.
TrajSignature BuildSignature(const Trajectory& t, const SigGrid& g);

/// Element-wise aggregate over members of a partition: bits are OR-ed,
/// minhash minima are taken component-wise (the aggregate minhash of the
/// union of the members' shingle sets).
void AggregateSignature(const TrajSignature& member, TrajSignature* agg);

/// Dilates `q` by `tau` in `g`'s own frame: the result contains every cell
/// whose rectangle is within rect-min-distance tau (plus a relative guard
/// band absorbing quantization rounding) of some set cell's rectangle. A
/// trajectory within tau of the query under DTW/Frechet has every point
/// within tau of some query point, hence every cell inside this set.
SigBits Dilate(const SigBits& q, const SigGrid& g, double tau);

/// Cross-frame dilation for joins: marks every `dst`-frame cell whose
/// rectangle is within tau of some set cell of `src` interpreted in
/// `src_grid`'s frame. Lets one side of a join test its locally-framed
/// aggregate signatures against the other side's without reprojecting any
/// trajectory data — signatures ship, trajectories don't.
SigBits DilateAcross(const SigBits& src, const SigGrid& src_grid,
                     const SigGrid& dst, double tau);

/// Estimated Jaccard resemblance of two shingle sets from their minhash
/// minima (fraction of agreeing components). Cost-model input only.
double MinhashResemblance(const std::array<uint64_t, kSigMinhash>& a,
                          const std::array<uint64_t, kSigMinhash>& b);

}  // namespace dita

#endif  // DITA_INDEX_SIGNATURE_H_
