#include "index/rtree.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dita {

void RTree::Build(std::vector<Entry> entries, size_t fanout) {
  DITA_CHECK(fanout >= 2);
  entries_ = std::move(entries);
  nodes_.clear();
  num_entries_ = entries_.size();
  if (entries_.empty()) {
    root_ = 0;
    nodes_.push_back(Node{});  // empty leaf root
    return;
  }

  std::vector<uint32_t> level(entries_.size());
  for (uint32_t i = 0; i < entries_.size(); ++i) level[i] = i;
  std::vector<uint32_t> parents = PackLevel(level, /*items_are_entries=*/true, fanout);
  while (parents.size() > 1) {
    parents = PackLevel(parents, /*items_are_entries=*/false, fanout);
  }
  root_ = parents[0];
}

std::vector<uint32_t> RTree::PackLevel(const std::vector<uint32_t>& items,
                                       bool items_are_entries, size_t fanout) {
  // STR: sort by center x, cut into vertical slices of ~sqrt(P) runs, sort
  // each slice by center y, emit runs of `fanout` items per node.
  const size_t num_nodes =
      (items.size() + fanout - 1) / fanout;  // ceil(P / fanout)
  const size_t num_slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_nodes))));
  const size_t slice_len =
      num_slices == 0 ? items.size()
                      : (items.size() + num_slices - 1) / num_slices;

  auto center = [&](uint32_t idx) {
    const MBR& m = items_are_entries ? entries_[idx].mbr : nodes_[idx].mbr;
    return m.Center();
  };

  std::vector<uint32_t> sorted = items;
  std::sort(sorted.begin(), sorted.end(), [&](uint32_t a, uint32_t b) {
    return center(a).x < center(b).x;
  });

  std::vector<uint32_t> out;
  out.reserve(num_nodes);
  for (size_t s = 0; s * slice_len < sorted.size(); ++s) {
    const size_t begin = s * slice_len;
    const size_t end = std::min(sorted.size(), begin + slice_len);
    std::sort(sorted.begin() + static_cast<long>(begin),
              sorted.begin() + static_cast<long>(end),
              [&](uint32_t a, uint32_t b) { return center(a).y < center(b).y; });
    for (size_t i = begin; i < end; i += fanout) {
      Node node;
      node.is_leaf = items_are_entries;
      const size_t stop = std::min(end, i + fanout);
      for (size_t j = i; j < stop; ++j) {
        node.children.push_back(sorted[j]);
        node.mbr.Expand(items_are_entries ? entries_[sorted[j]].mbr
                                          : nodes_[sorted[j]].mbr);
      }
      nodes_.push_back(std::move(node));
      out.push_back(static_cast<uint32_t>(nodes_.size() - 1));
    }
  }
  return out;
}

void RTree::SearchWithinDistance(const Point& p, double tau,
                                 std::vector<uint32_t>* out) const {
  if (num_entries_ == 0) return;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.mbr.MinDist(p) > tau) continue;
    if (node.is_leaf) {
      for (uint32_t e : node.children) {
        if (entries_[e].mbr.MinDist(p) <= tau) out->push_back(entries_[e].value);
      }
    } else {
      for (uint32_t c : node.children) stack.push_back(c);
    }
  }
}

void RTree::SearchIntersecting(const MBR& range, std::vector<uint32_t>* out) const {
  if (num_entries_ == 0) return;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.mbr.Intersects(range)) continue;
    if (node.is_leaf) {
      for (uint32_t e : node.children) {
        if (entries_[e].mbr.Intersects(range)) out->push_back(entries_[e].value);
      }
    } else {
      for (uint32_t c : node.children) stack.push_back(c);
    }
  }
}

size_t RTree::ByteSize() const {
  size_t bytes = entries_.size() * sizeof(Entry) + nodes_.size() * sizeof(Node);
  for (const Node& n : nodes_) bytes += n.children.size() * sizeof(uint32_t);
  return bytes;
}

}  // namespace dita
