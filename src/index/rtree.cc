#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "index/soa_planes.h"
#include "util/logging.h"

namespace dita {

namespace {

/// One level's nodes during construction, before they are appended to the
/// global arrays in packing order.
struct TempNode {
  double xlo, ylo, xhi, yhi;
  uint32_t first = 0;
  uint32_t count = 0;

  Point Center() const {
    return Point{(xlo + xhi) / 2, (ylo + yhi) / 2};
  }
};

/// STR slice length for packing `count` items into nodes of `fanout`:
/// sort by center x, cut into ~sqrt(P) vertical slices, sort each slice by
/// center y, emit runs of `fanout` per node (runs never span slices).
size_t StrSliceLen(size_t count, size_t fanout) {
  const size_t num_nodes = (count + fanout - 1) / fanout;
  const size_t num_slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_nodes))));
  return num_slices == 0 ? count : (count + num_slices - 1) / num_slices;
}

/// The STR packing permutation over `centers`, tie-broken on the item index
/// so equal-coordinate items order identically on every platform.
std::vector<uint32_t> StrOrder(const std::vector<Point>& centers,
                               size_t fanout) {
  std::vector<uint32_t> order(centers.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (centers[a].x != centers[b].x) return centers[a].x < centers[b].x;
    return a < b;
  });
  const size_t slice_len = StrSliceLen(centers.size(), fanout);
  for (size_t s = 0; s * slice_len < order.size(); ++s) {
    const size_t begin = s * slice_len;
    const size_t end = std::min(order.size(), begin + slice_len);
    std::sort(order.begin() + static_cast<long>(begin),
              order.begin() + static_cast<long>(end),
              [&](uint32_t a, uint32_t b) {
                if (centers[a].y != centers[b].y) return centers[a].y < centers[b].y;
                return a < b;
              });
  }
  return order;
}

}  // namespace

void RTree::Build(std::vector<Entry> entries, size_t fanout) {
  DITA_CHECK(fanout >= 2);
  num_entries_ = entries.size();
  exlo_.clear(); eylo_.clear(); exhi_.clear(); eyhi_.clear();
  evalue_.clear();
  nxlo_.clear(); nylo_.clear(); nxhi_.clear(); nyhi_.clear();
  nleaf_.clear(); nfirst_.clear(); ncount_.clear();
  root_ = 0;

  auto append_node = [this](const TempNode& t, bool leaf) {
    nxlo_.push_back(t.xlo);
    nylo_.push_back(t.ylo);
    nxhi_.push_back(t.xhi);
    nyhi_.push_back(t.yhi);
    nleaf_.push_back(leaf ? 1 : 0);
    nfirst_.push_back(t.first);
    ncount_.push_back(t.count);
  };

  if (entries.empty()) {
    TempNode empty;
    empty.xlo = empty.ylo = std::numeric_limits<double>::infinity();
    empty.xhi = empty.yhi = -std::numeric_limits<double>::infinity();
    append_node(empty, /*leaf=*/true);  // empty leaf root
    return;
  }

  // Reorder entries into STR leaf order and strip them into SoA planes, so
  // every leaf scans a contiguous run of flat arrays.
  {
    std::vector<Point> centers;
    centers.reserve(entries.size());
    for (const Entry& e : entries) centers.push_back(e.mbr.Center());
    const std::vector<uint32_t> order = StrOrder(centers, fanout);
    exlo_.reserve(order.size()); eylo_.reserve(order.size());
    exhi_.reserve(order.size()); eyhi_.reserve(order.size());
    evalue_.reserve(order.size());
    for (uint32_t idx : order) {
      const Entry& e = entries[idx];
      exlo_.push_back(e.mbr.lo().x);
      eylo_.push_back(e.mbr.lo().y);
      exhi_.push_back(e.mbr.hi().x);
      eyhi_.push_back(e.mbr.hi().y);
      evalue_.push_back(e.value);
    }
  }

  // Pack the leaf level: runs of `fanout` reordered entries per leaf,
  // runs confined to STR slices.
  std::vector<TempNode> cur;
  {
    const size_t n = num_entries_;
    const size_t slice_len = StrSliceLen(n, fanout);
    for (size_t s = 0; s * slice_len < n; ++s) {
      const size_t begin = s * slice_len;
      const size_t end = std::min(n, begin + slice_len);
      for (size_t i = begin; i < end; i += fanout) {
        const size_t stop = std::min(end, i + fanout);
        TempNode node;
        node.xlo = node.ylo = std::numeric_limits<double>::infinity();
        node.xhi = node.yhi = -std::numeric_limits<double>::infinity();
        node.first = static_cast<uint32_t>(i);
        node.count = static_cast<uint32_t>(stop - i);
        for (size_t e = i; e < stop; ++e) {
          node.xlo = std::min(node.xlo, exlo_[e]);
          node.ylo = std::min(node.ylo, eylo_[e]);
          node.xhi = std::max(node.xhi, exhi_[e]);
          node.yhi = std::max(node.yhi, eyhi_[e]);
        }
        cur.push_back(node);
      }
    }
  }

  // Pack upper levels: permute the current level into the next level's STR
  // order, append it to the global arrays (children become a contiguous id
  // range), then emit the parents over contiguous runs.
  bool cur_is_leaf_level = true;
  while (cur.size() > 1) {
    std::vector<Point> centers;
    centers.reserve(cur.size());
    for (const TempNode& t : cur) centers.push_back(t.Center());
    const std::vector<uint32_t> order = StrOrder(centers, fanout);

    const uint32_t base = static_cast<uint32_t>(nleaf_.size());
    std::vector<TempNode> permuted;
    permuted.reserve(cur.size());
    for (uint32_t idx : order) permuted.push_back(cur[idx]);
    for (const TempNode& t : permuted) append_node(t, cur_is_leaf_level);

    std::vector<TempNode> parents;
    const size_t n = permuted.size();
    const size_t slice_len = StrSliceLen(n, fanout);
    for (size_t s = 0; s * slice_len < n; ++s) {
      const size_t begin = s * slice_len;
      const size_t end = std::min(n, begin + slice_len);
      for (size_t i = begin; i < end; i += fanout) {
        const size_t stop = std::min(end, i + fanout);
        TempNode node;
        node.xlo = node.ylo = std::numeric_limits<double>::infinity();
        node.xhi = node.yhi = -std::numeric_limits<double>::infinity();
        node.first = base + static_cast<uint32_t>(i);
        node.count = static_cast<uint32_t>(stop - i);
        for (size_t c = i; c < stop; ++c) {
          node.xlo = std::min(node.xlo, permuted[c].xlo);
          node.ylo = std::min(node.ylo, permuted[c].ylo);
          node.xhi = std::max(node.xhi, permuted[c].xhi);
          node.yhi = std::max(node.yhi, permuted[c].yhi);
        }
        parents.push_back(node);
      }
    }
    cur = std::move(parents);
    cur_is_leaf_level = false;
  }

  append_node(cur[0], cur_is_leaf_level);
  root_ = static_cast<uint32_t>(nleaf_.size() - 1);
}

void RTree::SearchWithinDistance(const Point& p, double tau,
                                 std::vector<uint32_t>* out) const {
  if (num_entries_ == 0) return;
  // The traversal stacks are reused across calls on the same thread; probes
  // run once per (query, tree) inside hot search/join loops.
  static thread_local std::vector<uint32_t> stack;
  static thread_local std::vector<uint32_t> survivors;
  stack.clear();
  if (PlaneMinDist(nxlo_[root_], nylo_[root_], nxhi_[root_], nyhi_[root_], p) >
      tau) {
    return;
  }
  stack.push_back(root_);
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    const uint32_t first = nfirst_[n];
    const uint32_t stop = first + ncount_[n];
    if (nleaf_[n]) {
      // Leaf run: a contiguous scan of the entry-MBR planes.
      for (uint32_t e = first; e < stop; ++e) {
        if (PlaneMinDist(exlo_[e], eylo_[e], exhi_[e], eyhi_[e], p) <= tau) {
          out->push_back(evalue_[e]);
        }
      }
    } else {
      // Children occupy a contiguous id range; push survivors in reverse
      // so pop order matches the recursive reference's child order.
      survivors.clear();
      for (uint32_t c = first; c < stop; ++c) {
        if (PlaneMinDist(nxlo_[c], nylo_[c], nxhi_[c], nyhi_[c], p) <= tau) {
          survivors.push_back(c);
        }
      }
      for (size_t i = survivors.size(); i-- > 0;) stack.push_back(survivors[i]);
    }
  }
}

void RTree::SearchIntersecting(const MBR& range,
                               std::vector<uint32_t>* out) const {
  if (num_entries_ == 0) return;
  static thread_local std::vector<uint32_t> stack;
  static thread_local std::vector<uint32_t> survivors;
  stack.clear();
  if (!PlaneIntersects(nxlo_[root_], nylo_[root_], nxhi_[root_], nyhi_[root_],
                       range)) {
    return;
  }
  stack.push_back(root_);
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    const uint32_t first = nfirst_[n];
    const uint32_t stop = first + ncount_[n];
    if (nleaf_[n]) {
      for (uint32_t e = first; e < stop; ++e) {
        if (PlaneIntersects(exlo_[e], eylo_[e], exhi_[e], eyhi_[e], range)) {
          out->push_back(evalue_[e]);
        }
      }
    } else {
      survivors.clear();
      for (uint32_t c = first; c < stop; ++c) {
        if (PlaneIntersects(nxlo_[c], nylo_[c], nxhi_[c], nyhi_[c], range)) {
          survivors.push_back(c);
        }
      }
      for (size_t i = survivors.size(); i-- > 0;) stack.push_back(survivors[i]);
    }
  }
}

void RTree::SearchNodeReference(uint32_t n, const Point* p, double tau,
                                const MBR* range,
                                std::vector<uint32_t>* out) const {
  if (p != nullptr) {
    if (PlaneMinDist(nxlo_[n], nylo_[n], nxhi_[n], nyhi_[n], *p) > tau) return;
  } else {
    if (!PlaneIntersects(nxlo_[n], nylo_[n], nxhi_[n], nyhi_[n], *range)) return;
  }
  const uint32_t first = nfirst_[n];
  const uint32_t stop = first + ncount_[n];
  if (nleaf_[n]) {
    for (uint32_t e = first; e < stop; ++e) {
      const bool hit =
          p != nullptr
              ? PlaneMinDist(exlo_[e], eylo_[e], exhi_[e], eyhi_[e], *p) <= tau
              : PlaneIntersects(exlo_[e], eylo_[e], exhi_[e], eyhi_[e], *range);
      if (hit) out->push_back(evalue_[e]);
    }
    return;
  }
  for (uint32_t c = first; c < stop; ++c) {
    SearchNodeReference(c, p, tau, range, out);
  }
}

void RTree::SearchWithinDistanceReference(const Point& p, double tau,
                                          std::vector<uint32_t>* out) const {
  if (num_entries_ == 0) return;
  SearchNodeReference(root_, &p, tau, /*range=*/nullptr, out);
}

void RTree::SearchIntersectingReference(const MBR& range,
                                        std::vector<uint32_t>* out) const {
  if (num_entries_ == 0) return;
  SearchNodeReference(root_, /*p=*/nullptr, 0.0, &range, out);
}

size_t RTree::ByteSize() const {
  return 4 * exlo_.size() * sizeof(double)       // entry MBR planes
         + evalue_.size() * sizeof(uint32_t)     // entry values
         + 4 * nxlo_.size() * sizeof(double)     // node MBR planes
         + nleaf_.size() * sizeof(uint8_t)       // leaf flags
         + 2 * nfirst_.size() * sizeof(uint32_t);  // spans
}

uint64_t RTree::StructureDigest() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix_bytes = [&h](const void* data, size_t len) {
    const unsigned char* bp = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= bp[i];
      h *= 1099511628211ull;
    }
  };
  auto mix = [&](const auto& vec) {
    const uint64_t n = vec.size();
    mix_bytes(&n, sizeof(n));
    if (!vec.empty()) mix_bytes(vec.data(), vec.size() * sizeof(vec[0]));
  };
  mix(exlo_); mix(eylo_); mix(exhi_); mix(eyhi_);
  mix(evalue_);
  mix(nxlo_); mix(nylo_); mix(nxhi_); mix(nyhi_);
  mix(nleaf_); mix(nfirst_); mix(ncount_);
  mix_bytes(&root_, sizeof(root_));
  return h;
}

}  // namespace dita
