#ifndef DITA_INDEX_STR_TILE_H_
#define DITA_INDEX_STR_TILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/point.h"

namespace dita {

/// Sort-Tile-Recursive grouping (Leutenegger et al. [25]): splits `items`
/// into at most `num_groups` groups of roughly equal size by sorting on the
/// key point's x into ~sqrt(num_groups) slabs, then sorting each slab on y
/// and cutting it into equal-count runs. Groups are spatially coherent and
/// balanced even on highly skewed data — the property §4.2.1 relies on.
std::vector<std::vector<uint32_t>> StrTile(
    std::vector<uint32_t> items,
    const std::function<Point(uint32_t)>& key_of, size_t num_groups);

}  // namespace dita

#endif  // DITA_INDEX_STR_TILE_H_
