#ifndef DITA_INDEX_STR_TILE_H_
#define DITA_INDEX_STR_TILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/point.h"
#include "util/thread_pool.h"

namespace dita {

/// Sort-Tile-Recursive grouping (Leutenegger et al. [25]): splits `items`
/// into at most `num_groups` groups of roughly equal size by sorting on the
/// key point's x into ~sqrt(num_groups) slabs, then sorting each slab on y
/// and cutting it into equal-count runs. Groups are spatially coherent and
/// balanced even on highly skewed data — the property §4.2.1 relies on.
///
/// `key_of` is invoked exactly once per item; the sorts run over a flat
/// (key, item) array, not through the callback. Equal coordinates tie-break
/// on the item value, so the grouping is bit-reproducible across runs and
/// platforms regardless of the std::sort implementation.
///
/// When `pool` is non-null, large sorts are chunked across it (sorted
/// chunks + merge tree; slab sorts fan out independently). The result is
/// identical to the serial path. Helper-thread CPU seconds are added to
/// `*offloaded_seconds` when provided, for the cluster virtual-time ledger.
std::vector<std::vector<uint32_t>> StrTile(
    std::vector<uint32_t> items,
    const std::function<Point(uint32_t)>& key_of, size_t num_groups,
    ThreadPool* pool = nullptr, double* offloaded_seconds = nullptr);

}  // namespace dita

#endif  // DITA_INDEX_STR_TILE_H_
