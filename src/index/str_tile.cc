#include "index/str_tile.h"

#include <algorithm>
#include <cmath>

namespace dita {

namespace {

/// One sort record: the item's key point plus the item itself, kept together
/// so the sorts touch one contiguous array instead of chasing a callback.
/// The item doubles as the deterministic tie-breaker.
struct KeyedItem {
  double x;
  double y;
  uint32_t item;
};

inline bool LessX(const KeyedItem& a, const KeyedItem& b) {
  if (a.x != b.x) return a.x < b.x;
  return a.item < b.item;
}

inline bool LessY(const KeyedItem& a, const KeyedItem& b) {
  if (a.y != b.y) return a.y < b.y;
  return a.item < b.item;
}

/// Don't bother fanning a sort out below this many records: the submit and
/// merge overhead exceeds the sort itself.
constexpr size_t kParallelSortMin = 1 << 14;

/// Sorts [begin, end) by `less`, chunking across `pool` when the range is
/// large: parallel chunk sorts, then a merge tree (one parallel pass per
/// doubling). std::sort and std::inplace_merge under a strict total order
/// produce the unique sorted permutation, so the result is identical to the
/// serial path.
template <typename Less>
void SortRange(KeyedItem* begin, KeyedItem* end, Less less, ThreadPool* pool,
               double* offloaded_seconds) {
  const size_t n = static_cast<size_t>(end - begin);
  if (pool == nullptr || pool->num_threads() < 2 || n < kParallelSortMin) {
    std::sort(begin, end, less);
    return;
  }
  const size_t chunks = std::min<size_t>(pool->num_threads(), (n + 1) / 2);
  const size_t chunk_len = (n + chunks - 1) / chunks;
  double off = ThreadPool::ParallelFor(
      pool, chunks, /*min_parallel=*/2, [&](size_t lo, size_t hi) {
        for (size_t c = lo; c < hi; ++c) {
          const size_t b = c * chunk_len;
          const size_t e = std::min(n, b + chunk_len);
          if (b < e) std::sort(begin + b, begin + e, less);
        }
      });
  // Merge tree: each pass merges adjacent sorted runs of width `w`.
  for (size_t w = chunk_len; w < n; w *= 2) {
    const size_t pairs = (n + 2 * w - 1) / (2 * w);
    off += ThreadPool::ParallelFor(
        pool, pairs, /*min_parallel=*/2, [&](size_t lo, size_t hi) {
          for (size_t p = lo; p < hi; ++p) {
            const size_t b = p * 2 * w;
            const size_t m = std::min(n, b + w);
            const size_t e = std::min(n, b + 2 * w);
            if (m < e) {
              std::inplace_merge(begin + b, begin + m, begin + e, less);
            }
          }
        });
  }
  if (offloaded_seconds != nullptr) *offloaded_seconds += off;
}

}  // namespace

std::vector<std::vector<uint32_t>> StrTile(
    std::vector<uint32_t> items,
    const std::function<Point(uint32_t)>& key_of, size_t num_groups,
    ThreadPool* pool, double* offloaded_seconds) {
  std::vector<std::vector<uint32_t>> groups;
  if (items.empty() || num_groups == 0) return groups;
  if (num_groups == 1) {
    groups.push_back(std::move(items));
    return groups;
  }

  std::vector<KeyedItem> keyed;
  keyed.reserve(items.size());
  for (uint32_t item : items) {
    const Point p = key_of(item);
    keyed.push_back(KeyedItem{p.x, p.y, item});
  }

  SortRange(keyed.data(), keyed.data() + keyed.size(), LessX, pool,
            offloaded_seconds);
  const size_t num_slabs = std::max<size_t>(
      1,
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_groups)))));
  const size_t groups_per_slab = (num_groups + num_slabs - 1) / num_slabs;
  const size_t slab_len = (keyed.size() + num_slabs - 1) / num_slabs;

  // Slab y-sorts are independent of one another; fan them out whole (one
  // task per slab) when the input is large enough to matter.
  const size_t total_slabs = (keyed.size() + slab_len - 1) / slab_len;
  ThreadPool* slab_pool =
      keyed.size() >= kParallelSortMin ? pool : nullptr;
  const double off = ThreadPool::ParallelFor(
      slab_pool, total_slabs, /*min_parallel=*/2, [&](size_t lo, size_t hi) {
        for (size_t s = lo; s < hi; ++s) {
          const size_t begin = s * slab_len;
          const size_t end = std::min(keyed.size(), begin + slab_len);
          std::sort(keyed.data() + begin, keyed.data() + end, LessY);
        }
      });
  if (offloaded_seconds != nullptr) *offloaded_seconds += off;

  for (size_t s = 0; s < total_slabs; ++s) {
    const size_t begin = s * slab_len;
    const size_t end = std::min(keyed.size(), begin + slab_len);
    const size_t group_len = std::max<size_t>(
        1, (end - begin + groups_per_slab - 1) / groups_per_slab);
    for (size_t g = begin; g < end; g += group_len) {
      const size_t stop = std::min(end, g + group_len);
      std::vector<uint32_t> group;
      group.reserve(stop - g);
      for (size_t i = g; i < stop; ++i) group.push_back(keyed[i].item);
      groups.push_back(std::move(group));
    }
  }
  return groups;
}

}  // namespace dita
