#include "index/str_tile.h"

#include <algorithm>
#include <cmath>

namespace dita {

std::vector<std::vector<uint32_t>> StrTile(
    std::vector<uint32_t> items,
    const std::function<Point(uint32_t)>& key_of, size_t num_groups) {
  std::vector<std::vector<uint32_t>> groups;
  if (items.empty() || num_groups == 0) return groups;
  if (num_groups == 1) {
    groups.push_back(std::move(items));
    return groups;
  }

  std::sort(items.begin(), items.end(), [&](uint32_t a, uint32_t b) {
    return key_of(a).x < key_of(b).x;
  });
  const size_t num_slabs = std::max<size_t>(
      1,
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_groups)))));
  const size_t groups_per_slab = (num_groups + num_slabs - 1) / num_slabs;
  const size_t slab_len = (items.size() + num_slabs - 1) / num_slabs;

  for (size_t s = 0; s * slab_len < items.size(); ++s) {
    const size_t begin = s * slab_len;
    const size_t end = std::min(items.size(), begin + slab_len);
    std::sort(items.begin() + static_cast<long>(begin),
              items.begin() + static_cast<long>(end),
              [&](uint32_t a, uint32_t b) { return key_of(a).y < key_of(b).y; });
    const size_t group_len =
        std::max<size_t>(1, (end - begin + groups_per_slab - 1) / groups_per_slab);
    for (size_t g = begin; g < end; g += group_len) {
      const size_t stop = std::min(end, g + group_len);
      groups.emplace_back(items.begin() + static_cast<long>(g),
                          items.begin() + static_cast<long>(stop));
    }
  }
  return groups;
}

}  // namespace dita
