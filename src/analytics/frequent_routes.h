#ifndef DITA_ANALYTICS_FREQUENT_ROUTES_H_
#define DITA_ANALYTICS_FREQUENT_ROUTES_H_

#include <vector>

#include "analytics/similarity_graph.h"

namespace dita {

/// A frequently travelled route: a dense group of mutually similar trips
/// (the frequent-trajectory navigation application of §1).
struct FrequentRoute {
  /// The member with the most similar neighbours — the route's medoid-like
  /// representative a navigation system would suggest.
  TrajectoryId representative = -1;
  /// Number of trips on the route.
  size_t support = 0;
  std::vector<TrajectoryId> members;
};

/// Mines routes with at least `min_support` trips, most popular first.
/// Routes are the connected components of the tau-similarity graph.
Result<std::vector<FrequentRoute>> MineFrequentRoutes(const DitaEngine& engine,
                                                      double tau,
                                                      size_t min_support);

std::vector<FrequentRoute> MineFrequentRoutesInGraph(
    const SimilarityGraph& graph, size_t min_support);

}  // namespace dita

#endif  // DITA_ANALYTICS_FREQUENT_ROUTES_H_
