#ifndef DITA_ANALYTICS_OUTLIERS_H_
#define DITA_ANALYTICS_OUTLIERS_H_

#include <vector>

#include "analytics/similarity_graph.h"

namespace dita {

/// Distance-based trajectory outlier detection (the application of [22, 27]
/// built on DITA's join): a trajectory is an outlier if fewer than
/// `min_neighbors` other trajectories lie within `tau` of it.
struct OutlierParams {
  double tau = 0.001;
  size_t min_neighbors = 2;
};

/// Runs the distributed self-join and returns outlier ids, ascending.
Result<std::vector<TrajectoryId>> FindOutliers(const DitaEngine& engine,
                                               const OutlierParams& params);

/// Same decision on a pre-built graph.
std::vector<TrajectoryId> FindOutliersInGraph(const SimilarityGraph& graph,
                                              size_t min_neighbors);

}  // namespace dita

#endif  // DITA_ANALYTICS_OUTLIERS_H_
