#include "analytics/clustering.h"

#include <algorithm>

namespace dita {

Result<ClusteringResult> ClusterTrajectories(const DitaEngine& engine,
                                             const ClusteringParams& params) {
  if (params.min_pts == 0) {
    return Status::InvalidArgument("min_pts must be positive");
  }
  auto graph = SimilarityGraph::FromSelfJoin(engine, params.tau);
  DITA_RETURN_IF_ERROR(graph.status());
  return ClusterGraph(*graph, params.min_pts);
}

ClusteringResult ClusterGraph(const SimilarityGraph& graph, size_t min_pts) {
  ClusteringResult result;
  auto is_core = [&](TrajectoryId id) {
    return graph.DegreeOf(id) + 1 >= min_pts;  // neighbourhood includes self
  };

  // Expand clusters from unlabelled core points (classic DBSCAN on a
  // precomputed epsilon-neighbourhood graph).
  for (TrajectoryId seed : graph.nodes()) {
    if (!is_core(seed) || result.labels.count(seed)) continue;
    const int cluster = result.num_clusters++;
    std::vector<TrajectoryId> stack = {seed};
    result.labels[seed] = cluster;
    while (!stack.empty()) {
      const TrajectoryId id = stack.back();
      stack.pop_back();
      if (!is_core(id)) continue;  // border point: labelled but not expanded
      for (TrajectoryId nb : graph.NeighborsOf(id)) {
        auto [it, inserted] = result.labels.try_emplace(nb, cluster);
        if (inserted) stack.push_back(nb);
      }
    }
  }

  for (TrajectoryId id : graph.nodes()) {
    if (!result.labels.count(id)) result.noise.push_back(id);
  }
  std::sort(result.noise.begin(), result.noise.end());
  return result;
}

}  // namespace dita
