#include "analytics/frequent_routes.h"

#include <algorithm>

namespace dita {

Result<std::vector<FrequentRoute>> MineFrequentRoutes(const DitaEngine& engine,
                                                      double tau,
                                                      size_t min_support) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be positive");
  }
  auto graph = SimilarityGraph::FromSelfJoin(engine, tau);
  DITA_RETURN_IF_ERROR(graph.status());
  return MineFrequentRoutesInGraph(*graph, min_support);
}

std::vector<FrequentRoute> MineFrequentRoutesInGraph(
    const SimilarityGraph& graph, size_t min_support) {
  std::vector<FrequentRoute> routes;
  for (auto& component : graph.ConnectedComponents()) {
    if (component.size() < min_support) continue;
    FrequentRoute route;
    route.support = component.size();
    route.members = std::move(component);
    route.representative = route.members.front();
    for (TrajectoryId id : route.members) {
      if (graph.DegreeOf(id) > graph.DegreeOf(route.representative)) {
        route.representative = id;
      }
    }
    routes.push_back(std::move(route));
  }
  // ConnectedComponents is already largest-first; keep that order.
  return routes;
}

}  // namespace dita
