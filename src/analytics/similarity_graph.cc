#include "analytics/similarity_graph.h"

#include <algorithm>
#include <set>

namespace dita {

Result<SimilarityGraph> SimilarityGraph::FromSelfJoin(const DitaEngine& engine,
                                                      double tau) {
  auto pairs = engine.Join(engine, tau);
  DITA_RETURN_IF_ERROR(pairs.status());
  // The universe is recoverable from the self-join (every trajectory pairs
  // with itself at any non-negative threshold).
  std::set<TrajectoryId> universe;
  for (const auto& [a, b] : *pairs) {
    universe.insert(a);
    universe.insert(b);
  }
  return SimilarityGraph(
      std::vector<TrajectoryId>(universe.begin(), universe.end()), *pairs);
}

SimilarityGraph::SimilarityGraph(
    std::vector<TrajectoryId> nodes,
    const std::vector<std::pair<TrajectoryId, TrajectoryId>>& pairs)
    : nodes_(std::move(nodes)) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  for (TrajectoryId id : nodes_) adjacency_[id];  // materialize every node
  std::set<std::pair<TrajectoryId, TrajectoryId>> seen;
  for (const auto& [a, b] : pairs) {
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (!seen.insert({key.first, key.second}).second) continue;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    ++num_edges_;
  }
  for (auto& [_, neighbors] : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
}

const std::vector<TrajectoryId>& SimilarityGraph::NeighborsOf(
    TrajectoryId id) const {
  static const std::vector<TrajectoryId> kEmpty;
  auto it = adjacency_.find(id);
  return it == adjacency_.end() ? kEmpty : it->second;
}

std::vector<std::vector<TrajectoryId>> SimilarityGraph::ConnectedComponents()
    const {
  std::vector<std::vector<TrajectoryId>> components;
  std::set<TrajectoryId> visited;
  for (TrajectoryId start : nodes_) {
    if (visited.count(start)) continue;
    std::vector<TrajectoryId> component;
    std::vector<TrajectoryId> stack = {start};
    visited.insert(start);
    while (!stack.empty()) {
      const TrajectoryId id = stack.back();
      stack.pop_back();
      component.push_back(id);
      for (TrajectoryId nb : NeighborsOf(id)) {
        if (visited.insert(nb).second) stack.push_back(nb);
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  return components;
}

}  // namespace dita
