#include "analytics/outliers.h"

#include <algorithm>

namespace dita {

Result<std::vector<TrajectoryId>> FindOutliers(const DitaEngine& engine,
                                               const OutlierParams& params) {
  auto graph = SimilarityGraph::FromSelfJoin(engine, params.tau);
  DITA_RETURN_IF_ERROR(graph.status());
  return FindOutliersInGraph(*graph, params.min_neighbors);
}

std::vector<TrajectoryId> FindOutliersInGraph(const SimilarityGraph& graph,
                                              size_t min_neighbors) {
  std::vector<TrajectoryId> outliers;
  for (TrajectoryId id : graph.nodes()) {
    if (graph.DegreeOf(id) < min_neighbors) outliers.push_back(id);
  }
  std::sort(outliers.begin(), outliers.end());
  return outliers;
}

}  // namespace dita
