#ifndef DITA_ANALYTICS_SIMILARITY_GRAPH_H_
#define DITA_ANALYTICS_SIMILARITY_GRAPH_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "util/status.h"

namespace dita {

/// The neighbourhood structure induced by a similarity self-join: nodes are
/// trajectory ids, edges connect pairs within the join threshold. The
/// analytics layer (clustering, outliers, frequent routes — the applications
/// of the paper's §1) is built on top of this graph.
class SimilarityGraph {
 public:
  /// Builds the graph from an indexed engine by running a distributed
  /// self-join at threshold `tau` (self-pairs are dropped).
  static Result<SimilarityGraph> FromSelfJoin(const DitaEngine& engine,
                                              double tau);

  /// Builds from an explicit universe and (possibly asymmetric) pair list;
  /// edges are stored symmetrically, self-pairs and duplicates ignored.
  SimilarityGraph(std::vector<TrajectoryId> nodes,
                  const std::vector<std::pair<TrajectoryId, TrajectoryId>>& pairs);

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return num_edges_; }
  const std::vector<TrajectoryId>& nodes() const { return nodes_; }

  /// Neighbours of `id` (empty for unknown ids).
  const std::vector<TrajectoryId>& NeighborsOf(TrajectoryId id) const;

  /// Degree of `id` (0 for unknown ids).
  size_t DegreeOf(TrajectoryId id) const { return NeighborsOf(id).size(); }

  /// Connected components, largest first; singleton components included.
  std::vector<std::vector<TrajectoryId>> ConnectedComponents() const;

 private:
  std::vector<TrajectoryId> nodes_;
  std::unordered_map<TrajectoryId, std::vector<TrajectoryId>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace dita

#endif  // DITA_ANALYTICS_SIMILARITY_GRAPH_H_
