#ifndef DITA_ANALYTICS_CLUSTERING_H_
#define DITA_ANALYTICS_CLUSTERING_H_

#include <unordered_map>
#include <vector>

#include "analytics/similarity_graph.h"

namespace dita {

/// Density-based trajectory clustering (DBSCAN over the similarity graph —
/// the trajectory-clustering application of [20, 24] built on DITA's join).
struct ClusteringParams {
  /// Similarity threshold defining the neighbourhood (join tau).
  double tau = 0.001;
  /// Minimum neighbourhood size (including the trajectory itself) for a
  /// trajectory to be a core point.
  size_t min_pts = 4;
};

struct ClusteringResult {
  /// Cluster id per trajectory; kNoise for trajectories in no cluster.
  static constexpr int kNoise = -1;
  std::unordered_map<TrajectoryId, int> labels;
  int num_clusters = 0;
  std::vector<TrajectoryId> noise;

  int LabelOf(TrajectoryId id) const {
    auto it = labels.find(id);
    return it == labels.end() ? kNoise : it->second;
  }
};

/// Runs the distributed self-join at params.tau and clusters its graph.
Result<ClusteringResult> ClusterTrajectories(const DitaEngine& engine,
                                             const ClusteringParams& params);

/// Clusters a pre-built similarity graph (no join executed).
ClusteringResult ClusterGraph(const SimilarityGraph& graph, size_t min_pts);

}  // namespace dita

#endif  // DITA_ANALYTICS_CLUSTERING_H_
