// Figure 13 (Appendix B "Partitioning Scheme"): DITA's first/last STR
// partitioning vs random partitioning, join seconds vs tau, on Beijing- and
// Chengdu-like data. Also reports shipped bytes, the mechanism behind the
// gap (§B: random ships everything everywhere).

#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {
namespace {

void Run(const Args& args) {
  const auto taus = PaperTaus();
  std::vector<std::string> cols;
  for (double tau : taus) cols.push_back(StrFormat("%.3f", tau));

  struct Panel {
    const char* name;
    Dataset data;
  };
  std::vector<Panel> panels;
  panels.push_back({"Beijing", GenerateBeijingLike(args.scale, 42)});
  panels.push_back({"Chengdu", GenerateChengduLike(args.scale, 43)});

  for (const auto& panel : panels) {
    PrintHeader(
        StrFormat("partitioning scheme on %s, join seconds", panel.name), cols);
    for (bool random : {false, true}) {
      DitaConfig config = DefaultConfig();
      config.build.random_partitioning = random;
      std::vector<double> row;
      std::vector<double> mb;
      for (double tau : taus) {
        auto cluster = MakeCluster(args.workers);
        DitaEngine engine(cluster, config);
        DITA_CHECK(engine.BuildIndex(panel.data).ok());
        DitaEngine::JoinStats stats;
        DITA_CHECK(engine.Join(engine, tau, &stats).ok());
        row.push_back(stats.makespan_seconds);
        mb.push_back(double(stats.bytes_shipped) / (1024.0 * 1024.0));
      }
      PrintRow(random ? "Random" : "DITA", row, "%12.4f");
      PrintRow(random ? "Random shipped MB" : "DITA shipped MB", mb, "%12.2f");
    }
  }
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Figure 13 reproduction: partitioning scheme ablation (DTW)\n");
  std::printf("scale=%.2f workers=%zu\n", args.scale, args.workers);
  dita::bench::Run(args);
  return 0;
}
