// Fault-recovery overhead on the simulated cluster: how much do transient
// task failures, a permanent worker crash mid-join, and stragglers (with and
// without speculative backups) inflate the cost-model makespan of a DITA
// distributed self-join? Answers are identical across all rows by
// construction (deterministic lineage recomputation); only virtual time
// moves.
//
//   bench_fault_recovery [--scale=f] [--workers=n]

#include <cstdio>
#include <tuple>

#include "bench/bench_common.h"
#include "cluster/fault_injector.h"

namespace dita::bench {
namespace {

Dataset MakeData(double scale) {
  GeneratorConfig cfg;
  cfg.cardinality = static_cast<size_t>(2000 * scale);
  cfg.region = MBR(Point{39.5, 115.5}, Point{41.0, 117.5});
  cfg.step = 0.004;
  cfg.avg_len = 32;
  cfg.min_len = 8;
  cfg.max_len = 128;
  cfg.seed = 20180607;
  return GenerateTaxiDataset(cfg);
}

struct RunResult {
  double makespan = 0.0;
  size_t result_pairs = 0;
  FaultStats faults;
};

/// One indexed self-join under `plan` (empty plan = fault-free baseline).
RunResult RunJoin(const Dataset& ds, const Args& args, const FaultPlan& plan,
                  double speculation_multiplier) {
  ClusterConfig ccfg;
  ccfg.num_workers = args.workers;
  ccfg.speculation_multiplier = speculation_multiplier;
  auto cluster = std::make_shared<Cluster>(ccfg);
  DitaEngine engine(cluster, DefaultConfig());
  Status built = engine.BuildIndex(ds);
  if (!built.ok()) {
    std::fprintf(stderr, "BuildIndex: %s\n", built.ToString().c_str());
    std::exit(1);
  }
  if (plan.any_faults()) {
    FaultPlan adjusted = plan;
    if (adjusted.crash_at_stage >= 0) {
      // Interpret crash_at_stage as an offset into the join's own stages
      // (0 = ship, 1 = probe) rather than an absolute stage index.
      adjusted.crash_at_stage += static_cast<int64_t>(cluster->stages_run());
    }
    cluster->InjectFaults(adjusted);
  }

  const Cluster::CostSnapshot snap = cluster->Snapshot();
  DitaEngine::JoinStats stats;
  auto pairs = engine.Join(engine, 0.003, &stats);
  if (!pairs.ok()) {
    std::fprintf(stderr, "Join: %s\n", pairs.status().ToString().c_str());
    std::exit(1);
  }
  return {cluster->MakespanSince(snap), pairs->size(), stats.faults};
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  using namespace dita;
  using namespace dita::bench;

  Args args = ParseArgs(argc, argv);
  const Dataset ds = MakeData(args.scale);
  std::printf("fault-recovery overhead: %zu trajectories, %zu workers\n",
              ds.size(), args.workers);

  const RunResult clean = RunJoin(ds, args, FaultPlan{}, 0.0);
  auto inflation = [&](const RunResult& r) {
    return clean.makespan > 0 ? r.makespan / clean.makespan : 0.0;
  };

  PrintHeader("join makespan under faults (cost-model seconds)",
              {"makespan_s", "inflation", "retries", "reassigned", "rec_MB"});
  auto row = [&](const std::string& label, const RunResult& r) {
    if (r.result_pairs != clean.result_pairs) {
      std::fprintf(stderr, "%s: answer diverged (%zu vs %zu pairs)\n",
                   label.c_str(), r.result_pairs, clean.result_pairs);
      std::exit(1);
    }
    PrintRow(label,
             {r.makespan, inflation(r), static_cast<double>(r.faults.retries),
              static_cast<double>(r.faults.tasks_reassigned),
              static_cast<double>(r.faults.recovery_bytes) / 1e6});
  };
  row("fault-free", clean);

  // Transient task failures at increasing rates: retry backoff + wasted
  // attempts.
  for (double p : {0.05, 0.2, 0.5}) {
    FaultPlan plan;
    plan.transient_failure_prob = p;
    char label[64];
    std::snprintf(label, sizeof(label), "transient p=%.2f", p);
    row(label, RunJoin(ds, args, plan, 0.0));
  }

  // Permanent worker loss at each join stage: lineage re-shipping +
  // recomputation on survivors.
  for (int64_t stage : {0, 1}) {
    FaultPlan plan;
    plan.crash_worker = 1;
    plan.crash_at_stage = stage;
    char label[64];
    std::snprintf(label, sizeof(label), "crash@join-%s",
                  stage == 0 ? "ship" : "probe");
    row(label, RunJoin(ds, args, plan, 0.0));
  }

  // Stragglers, then the same schedule with speculative backups.
  FaultPlan slow;
  slow.straggler_prob = 0.1;
  slow.straggler_multiplier = 8.0;
  const RunResult dragged = RunJoin(ds, args, slow, 0.0);
  row("stragglers 10% x8", dragged);
  const RunResult saved = RunJoin(ds, args, slow, 2.0);
  row("  + speculation x2", saved);
  std::printf("%-28s%12.2f\n", "speculation speedup",
              saved.makespan > 0 ? dragged.makespan / saved.makespan : 0.0);
  std::printf("%-28s%12zu%12zu\n", "spec launches / wins",
              static_cast<size_t>(saved.faults.speculative_launches),
              static_cast<size_t>(saved.faults.speculative_wins));

  PrintNote("all rows return the identical join answer; faults cost only "
            "virtual time (retry backoff, recovery shipping, recomputation)");
  return 0;
}
