// Micro-benchmarks (google-benchmark) for the distance kernels and the
// filtering primitives: the building blocks whose constants determine every
// experiment above. Run: ./build/bench/bench_micro_distance

#include <benchmark/benchmark.h>

#include "distance/distance.h"
#include "distance/dtw.h"
#include "index/cell.h"
#include "index/pivot.h"
#include "index/trie_index.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset MicroDataset(size_t n = 512, double avg_len = 40) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.avg_len = avg_len;
  cfg.min_len = 8;
  cfg.max_len = static_cast<size_t>(avg_len * 4);
  cfg.seed = 71;
  return GenerateTaxiDataset(cfg);
}

void BM_DistanceCompute(benchmark::State& state, DistanceType type) {
  Dataset ds = MicroDataset();
  auto dist = *MakeDistance(type);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = ds[i % ds.size()];
    const auto& b = ds[(i * 7 + 1) % ds.size()];
    benchmark::DoNotOptimize(dist->Compute(a, b));
    ++i;
  }
}
BENCHMARK_CAPTURE(BM_DistanceCompute, DTW, DistanceType::kDTW);
BENCHMARK_CAPTURE(BM_DistanceCompute, Frechet, DistanceType::kFrechet);
BENCHMARK_CAPTURE(BM_DistanceCompute, EDR, DistanceType::kEDR);
BENCHMARK_CAPTURE(BM_DistanceCompute, LCSS, DistanceType::kLCSS);
BENCHMARK_CAPTURE(BM_DistanceCompute, ERP, DistanceType::kERP);

void BM_DtwWithinThreshold(benchmark::State& state) {
  Dataset ds = MicroDataset();
  Dtw dtw;
  const double tau = state.range(0) / 1000.0;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = ds[i % ds.size()];
    const auto& b = ds[(i * 7 + 1) % ds.size()];
    benchmark::DoNotOptimize(dtw.WithinThreshold(a, b, tau));
    ++i;
  }
}
BENCHMARK(BM_DtwWithinThreshold)->Arg(1)->Arg(5)->Arg(50);

void BM_Pamd(benchmark::State& state) {
  Dataset ds = MicroDataset();
  std::vector<IndexingSequence> seqs;
  for (const auto& t : ds.trajectories()) {
    seqs.push_back(BuildIndexingSequence(t, 4, PivotStrategy::kNeighborDistance));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Pamd(seqs[i % seqs.size()], ds[(i * 7 + 1) % ds.size()]));
    ++i;
  }
}
BENCHMARK(BM_Pamd);

void BM_CellLowerBound(benchmark::State& state) {
  Dataset ds = MicroDataset();
  std::vector<CellSummary> cells;
  for (const auto& t : ds.trajectories()) cells.push_back(CompressToCells(t, 0.005));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CellLowerBoundDtw(cells[i % cells.size()],
                                               cells[(i * 7 + 1) % cells.size()],
                                               0.003));
    ++i;
  }
}
BENCHMARK(BM_CellLowerBound);

void BM_TrieProbe(benchmark::State& state) {
  Dataset ds = MicroDataset(2048);
  TrieIndex trie;
  TrieIndex::Options opts;
  opts.num_pivots = 4;
  opts.align_fanout = 8;
  opts.pivot_fanout = 4;
  opts.leaf_capacity = 4;
  if (!trie.Build(ds.trajectories(), opts).ok()) {
    state.SkipWithError("trie build failed");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    TrieIndex::SearchSpec spec;
    const Trajectory& q = ds[i % ds.size()];
    spec.query = &q;
    spec.tau = 0.003;
    spec.mode = PruneMode::kAccumulate;
    std::vector<uint32_t> out;
    trie.CollectCandidates(spec, &out);
    benchmark::DoNotOptimize(out.size());
    ++i;
  }
}
BENCHMARK(BM_TrieProbe);

}  // namespace
}  // namespace dita

BENCHMARK_MAIN();
