// Micro-benchmarks (google-benchmark) for the distance kernels and the
// filtering primitives: the building blocks whose constants determine every
// experiment above. Run: ./build/bench/bench_micro_distance
//
// Before running the google-benchmark suite, the binary times the kernels on
// fixed-length trajectory pairs and writes a machine-readable
// BENCH_micro_distance.json (ns/pair per distance type and trajectory length,
// DTW WithinThreshold ns/pair per threshold regime, and verification
// throughput in pairs/sec) so the perf trajectory of the verification layer
// is tracked across PRs. Pass --skip_json to go straight to google-benchmark.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/verifier.h"
#include "distance/distance.h"
#include "distance/dtw.h"
#include "index/cell.h"
#include "index/pivot.h"
#include "index/trie_index.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset MicroDataset(size_t n = 512, double avg_len = 40) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.avg_len = avg_len;
  cfg.min_len = 8;
  cfg.max_len = static_cast<size_t>(avg_len * 4);
  cfg.seed = 71;
  return GenerateTaxiDataset(cfg);
}

void BM_DistanceCompute(benchmark::State& state, DistanceType type) {
  Dataset ds = MicroDataset();
  auto dist = *MakeDistance(type);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = ds[i % ds.size()];
    const auto& b = ds[(i * 7 + 1) % ds.size()];
    benchmark::DoNotOptimize(dist->Compute(a, b));
    ++i;
  }
}
BENCHMARK_CAPTURE(BM_DistanceCompute, DTW, DistanceType::kDTW);
BENCHMARK_CAPTURE(BM_DistanceCompute, Frechet, DistanceType::kFrechet);
BENCHMARK_CAPTURE(BM_DistanceCompute, EDR, DistanceType::kEDR);
BENCHMARK_CAPTURE(BM_DistanceCompute, LCSS, DistanceType::kLCSS);
BENCHMARK_CAPTURE(BM_DistanceCompute, ERP, DistanceType::kERP);

void BM_DtwWithinThreshold(benchmark::State& state) {
  Dataset ds = MicroDataset();
  Dtw dtw;
  const double tau = state.range(0) / 1000.0;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = ds[i % ds.size()];
    const auto& b = ds[(i * 7 + 1) % ds.size()];
    benchmark::DoNotOptimize(dtw.WithinThreshold(a, b, tau));
    ++i;
  }
}
BENCHMARK(BM_DtwWithinThreshold)->Arg(1)->Arg(5)->Arg(50);

void BM_Pamd(benchmark::State& state) {
  Dataset ds = MicroDataset();
  std::vector<IndexingSequence> seqs;
  for (const auto& t : ds.trajectories()) {
    seqs.push_back(BuildIndexingSequence(t, 4, PivotStrategy::kNeighborDistance));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Pamd(seqs[i % seqs.size()], ds[(i * 7 + 1) % ds.size()]));
    ++i;
  }
}
BENCHMARK(BM_Pamd);

void BM_CellLowerBound(benchmark::State& state) {
  Dataset ds = MicroDataset();
  std::vector<CellSummary> cells;
  for (const auto& t : ds.trajectories()) cells.push_back(CompressToCells(t, 0.005));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CellLowerBoundDtw(cells[i % cells.size()],
                                               cells[(i * 7 + 1) % cells.size()],
                                               0.003));
    ++i;
  }
}
BENCHMARK(BM_CellLowerBound);

void BM_TrieProbe(benchmark::State& state) {
  Dataset ds = MicroDataset(2048);
  TrieIndex trie;
  TrieIndex::Options opts;
  opts.num_pivots = 4;
  opts.align_fanout = 8;
  opts.pivot_fanout = 4;
  opts.leaf_capacity = 4;
  if (!trie.Build(ds.trajectories(), opts).ok()) {
    state.SkipWithError("trie build failed");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    TrieIndex::SearchSpec spec;
    const Trajectory& q = ds[i % ds.size()];
    spec.query = &q;
    spec.tau = 0.003;
    spec.mode = PruneMode::kAccumulate;
    std::vector<uint32_t> out;
    trie.CollectCandidates(spec, &out);
    benchmark::DoNotOptimize(out.size());
    ++i;
  }
}
BENCHMARK(BM_TrieProbe);

// ---------------------------------------------------------------------------
// Machine-readable kernel timings: BENCH_micro_distance.json.
// ---------------------------------------------------------------------------

/// Fixed-length workload: half the trajectories are noisy resamplings of a
/// shared route (pairs land near the DTW threshold band), half independent
/// walks (pairs reject quickly), mirroring what verification actually sees.
std::vector<Trajectory> FixedLengthWorkload(size_t count, size_t len,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<Trajectory> out;
  out.reserve(count);
  // A handful of canonical routes; even-indexed trips resample route
  // (i/2 % routes), odd-indexed trips are independent walks.
  const size_t num_routes = 8;
  std::vector<std::vector<Point>> routes;
  for (size_t r = 0; r < num_routes; ++r) {
    std::vector<Point> route;
    Point pos{rng.Uniform(116.0, 116.8), rng.Uniform(39.6, 40.2)};
    double hx = rng.Uniform(-1.0, 1.0), hy = rng.Uniform(-1.0, 1.0);
    for (size_t i = 0; i < len; ++i) {
      route.push_back(pos);
      hx += rng.Gaussian(0, 0.4);
      hy += rng.Gaussian(0, 0.4);
      pos.x += 0.002 * hx / (1.0 + std::abs(hx));
      pos.y += 0.002 * hy / (1.0 + std::abs(hy));
    }
    routes.push_back(std::move(route));
  }
  for (size_t i = 0; i < count; ++i) {
    Trajectory t;
    t.set_id(static_cast<TrajectoryId>(i));
    if (i % 2 == 0) {
      const auto& route = routes[(i / 2) % num_routes];
      for (const Point& p : route) {
        t.mutable_points().push_back(
            Point{p.x + rng.Gaussian(0, 0.0002), p.y + rng.Gaussian(0, 0.0002)});
      }
    } else {
      Point pos{rng.Uniform(116.0, 116.8), rng.Uniform(39.6, 40.2)};
      for (size_t j = 0; j < len; ++j) {
        t.mutable_points().push_back(pos);
        pos.x += rng.Gaussian(0, 0.002);
        pos.y += rng.Gaussian(0, 0.002);
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

struct Pair {
  const Trajectory* a;
  const Trajectory* b;
};

std::vector<Pair> MakePairs(const std::vector<Trajectory>& ts) {
  std::vector<Pair> pairs;
  for (size_t i = 0; i < ts.size(); ++i) {
    pairs.push_back(Pair{&ts[i], &ts[(i * 7 + 1) % ts.size()]});
  }
  return pairs;
}

/// Times `fn` over the pair list until ~80ms of wall clock has elapsed;
/// returns ns per pair.
template <typename Fn>
double NsPerPair(const std::vector<Pair>& pairs, Fn&& fn) {
  // Warm-up pass (also faults in memory / populates scratch buffers).
  for (const Pair& p : pairs) fn(*p.a, *p.b);
  size_t done = 0;
  WallTimer timer;
  do {
    for (const Pair& p : pairs) fn(*p.a, *p.b);
    done += pairs.size();
  } while (timer.Seconds() < 0.08);
  return timer.Seconds() * 1e9 / static_cast<double>(done);
}

double Percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

void WriteMicroJson(const char* path) {
  const std::vector<size_t> lengths = {32, 64, 128, 256};
  const std::vector<DistanceType> types = {
      DistanceType::kDTW, DistanceType::kFrechet, DistanceType::kEDR,
      DistanceType::kLCSS, DistanceType::kERP};

  std::string json = "{\n";
  json += "  \"meta\": " + bench::MetaJson() + ",\n";

  // --- Compute ns/pair per distance type and length. ---
  json += "  \"compute_ns_per_pair\": {\n";
  for (size_t ti = 0; ti < types.size(); ++ti) {
    auto dist = *MakeDistance(types[ti]);
    json += std::string("    \"") + DistanceTypeName(types[ti]) + "\": {";
    for (size_t li = 0; li < lengths.size(); ++li) {
      const auto ts = FixedLengthWorkload(64, lengths[li], 9000 + lengths[li]);
      const auto pairs = MakePairs(ts);
      const double ns = NsPerPair(pairs, [&](const Trajectory& a,
                                             const Trajectory& b) {
        benchmark::DoNotOptimize(dist->Compute(a, b));
      });
      char buf[64];
      std::snprintf(buf, sizeof(buf), "\"%zu\": %.1f", lengths[li], ns);
      json += buf;
      if (li + 1 < lengths.size()) json += ", ";
      std::printf("compute %-7s len=%-4zu %10.1f ns/pair\n",
                  DistanceTypeName(types[ti]), lengths[li], ns);
    }
    json += ti + 1 < types.size() ? "},\n" : "}\n";
  }
  json += "  },\n";

  // --- DTW WithinThreshold ns/pair per length and threshold regime. ---
  // tau at the p25/p50/p75 of the workload's actual DTW distances, so each
  // regime mixes accepts and rejects the way live verification does.
  json += "  \"dtw_within_threshold_ns_per_pair\": {\n";
  Dtw dtw;
  for (size_t li = 0; li < lengths.size(); ++li) {
    const auto ts = FixedLengthWorkload(64, lengths[li], 9000 + lengths[li]);
    const auto pairs = MakePairs(ts);
    std::vector<double> dists;
    for (const Pair& p : pairs) dists.push_back(dtw.Compute(*p.a, *p.b));
    char buf[160];
    std::snprintf(buf, sizeof(buf), "    \"%zu\": {", lengths[li]);
    json += buf;
    const std::pair<const char*, double> regimes[] = {
        {"p25", Percentile(dists, 0.25)},
        {"p50", Percentile(dists, 0.50)},
        {"p75", Percentile(dists, 0.75)}};
    for (size_t ri = 0; ri < 3; ++ri) {
      const double tau = regimes[ri].second;
      const double ns = NsPerPair(pairs, [&](const Trajectory& a,
                                             const Trajectory& b) {
        benchmark::DoNotOptimize(dtw.WithinThreshold(a, b, tau));
      });
      std::snprintf(buf, sizeof(buf), "\"%s\": %.1f", regimes[ri].first, ns);
      json += buf;
      if (ri + 1 < 3) json += ", ";
      std::printf("dtw-wt  len=%-4zu %s tau=%.5f %10.1f ns/pair\n",
                  lengths[li], regimes[ri].first, tau, ns);
    }
    json += li + 1 < lengths.size() ? "},\n" : "}\n";
  }
  json += "  },\n";

  // --- Verification throughput (filter + DP) in pairs/sec per distance. ---
  json += "  \"verify_throughput_pairs_per_sec\": {\n";
  for (size_t ti = 0; ti < types.size(); ++ti) {
    DitaConfig config;
    config.distance = types[ti];
    auto dist = *MakeDistance(types[ti], config.distance_params);
    Verifier verifier(dist, config);
    const auto ts = FixedLengthWorkload(64, 64, 1234);
    const auto pairs = MakePairs(ts);
    std::vector<VerifyPrecomp> pre;
    pre.reserve(ts.size());
    for (const auto& t : ts) pre.push_back(VerifyPrecomp::For(t, 0.01));
    std::vector<double> dists;
    for (const Pair& p : pairs) dists.push_back(dist->Compute(*p.a, *p.b));
    const double tau = Percentile(dists, 0.5);
    // Index pairs so precomp lines up with trajectories.
    std::vector<std::pair<size_t, size_t>> idx_pairs;
    for (size_t i = 0; i < ts.size(); ++i) {
      idx_pairs.emplace_back(i, (i * 7 + 1) % ts.size());
    }
    for (const auto& [i, j] : idx_pairs) {  // warm-up
      verifier.Verify(ts[i], pre[i], ts[j], pre[j], tau, nullptr);
    }
    size_t done = 0;
    WallTimer timer;
    do {
      for (const auto& [i, j] : idx_pairs) {
        benchmark::DoNotOptimize(
            verifier.Verify(ts[i], pre[i], ts[j], pre[j], tau, nullptr));
      }
      done += idx_pairs.size();
    } while (timer.Seconds() < 0.08);
    const double pairs_per_sec = static_cast<double>(done) / timer.Seconds();
    char buf[96];
    std::snprintf(buf, sizeof(buf), "    \"%s\": %.0f",
                  DistanceTypeName(types[ti]), pairs_per_sec);
    json += buf;
    json += ti + 1 < types.size() ? ",\n" : "\n";
    std::printf("verify  %-7s len=64   %12.0f pairs/sec\n",
                DistanceTypeName(types[ti]), pairs_per_sec);
  }
  json += "  }\n}\n";

  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace dita

int main(int argc, char** argv) {
  bool skip_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip_json") == 0) skip_json = true;
  }
  if (!skip_json) dita::WriteMicroJson("BENCH_micro_distance.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
