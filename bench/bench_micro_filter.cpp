// Micro-benchmarks for the filter side of DITA: trie candidate collection,
// global R-tree probes, and index construction throughput — the §5 filtering
// costs that PR 2's verification work exposed as the new bottleneck.
//
// Before the google-benchmark suite runs, the binary times these primitives
// on a fixed generated workload and writes a machine-readable
// BENCH_micro_filter.json (trie CollectCandidates ns/query per prune mode and
// threshold, R-tree probe ns/query, trie/partition build wall time and
// trajectories/sec) so filter performance is tracked across PRs next to
// BENCH_micro_distance.json. Pass --skip_json to go straight to
// google-benchmark.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "core/partitioner.h"
#include "index/cell.h"
#include "index/rtree.h"
#include "index/signature.h"
#include "index/trie_index.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset FilterDataset(size_t n, uint64_t seed = 71) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.avg_len = 40;
  cfg.min_len = 8;
  cfg.max_len = 160;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

TrieIndex::Options FilterTrieOptions() {
  TrieIndex::Options opts;
  opts.num_pivots = 4;
  opts.align_fanout = 8;
  opts.pivot_fanout = 4;
  opts.leaf_capacity = 4;
  return opts;
}

/// Measurement window per timed primitive; --quick shrinks it so the JSON
/// write finishes in well under a second (numbers get noisy, schema stays
/// complete — ci.sh bench-smoke gates on shape, not precision).
double g_measure_seconds = 0.1;

/// Times `fn` until ~g_measure_seconds of wall clock has elapsed; returns ns
/// per call.
template <typename Fn>
double NsPerCall(Fn&& fn) {
  fn();  // warm-up (faults in memory, sizes thread-local scratch)
  size_t done = 0;
  WallTimer timer;
  do {
    fn();
    ++done;
  } while (timer.Seconds() < g_measure_seconds);
  return timer.Seconds() * 1e9 / static_cast<double>(done);
}

// ---------------------------------------------------------------------------
// google-benchmark registrations.
// ---------------------------------------------------------------------------

void BM_TrieCollect(benchmark::State& state, PruneMode mode) {
  Dataset ds = FilterDataset(2048);
  TrieIndex trie;
  if (!trie.Build(ds.trajectories(), FilterTrieOptions()).ok()) {
    state.SkipWithError("trie build failed");
    return;
  }
  std::vector<uint32_t> out;
  size_t i = 0;
  for (auto _ : state) {
    TrieIndex::SearchSpec spec;
    const Trajectory& q = ds[i % ds.size()];
    spec.query = &q;
    spec.tau = mode == PruneMode::kEditCount ? 4.0 : 0.01;
    spec.mode = mode;
    spec.epsilon = 0.005;
    out.clear();
    trie.CollectCandidates(spec, &out);
    benchmark::DoNotOptimize(out.size());
    ++i;
  }
}
BENCHMARK_CAPTURE(BM_TrieCollect, Accumulate, PruneMode::kAccumulate);
BENCHMARK_CAPTURE(BM_TrieCollect, Max, PruneMode::kMax);
BENCHMARK_CAPTURE(BM_TrieCollect, EditCount, PruneMode::kEditCount);

void BM_RTreeProbe(benchmark::State& state) {
  Rng rng(17);
  std::vector<RTree::Entry> entries;
  for (uint32_t i = 0; i < 4096; ++i) {
    const Point lo{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
    const Point hi{lo.x + rng.Uniform(0.0, 0.02), lo.y + rng.Uniform(0.0, 0.02)};
    entries.push_back(RTree::Entry{MBR(lo, hi), i});
  }
  RTree tree;
  tree.Build(std::move(entries), 16);
  std::vector<uint32_t> out;
  size_t i = 0;
  for (auto _ : state) {
    const Point p{0.001 * static_cast<double>(i % 1000), 0.5};
    out.clear();
    tree.SearchWithinDistance(p, 0.05, &out);
    benchmark::DoNotOptimize(out.size());
    ++i;
  }
}
BENCHMARK(BM_RTreeProbe);

void BM_TrieBuild(benchmark::State& state) {
  Dataset ds = FilterDataset(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    TrieIndex trie;
    benchmark::DoNotOptimize(
        trie.Build(ds.trajectories(), FilterTrieOptions()).ok());
  }
}
BENCHMARK(BM_TrieBuild)->Arg(1024)->Arg(4096);

// ---------------------------------------------------------------------------
// Machine-readable filter timings: BENCH_micro_filter.json.
// ---------------------------------------------------------------------------

void WriteFilterJson(const char* path) {
  std::string json = "{\n";
  json += "  \"meta\": " + bench::MetaJson() + ",\n";
  char buf[160];

  // --- Trie candidate collection, ns/query. ---
  // 4096 trajectories, the engine-default trie shape, 64 query trajectories
  // drawn from the dataset; taus span prune-heavy to scan-heavy regimes.
  Dataset ds = FilterDataset(4096);
  TrieIndex trie;
  if (!trie.Build(ds.trajectories(), FilterTrieOptions()).ok()) {
    std::fprintf(stderr, "trie build failed\n");
    return;
  }
  const size_t num_queries = 64;
  std::vector<const Trajectory*> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(&ds[(i * 61) % ds.size()]);
  }
  std::vector<uint32_t> out;
  auto collect_ns = [&](PruneMode mode, double tau, double epsilon) {
    return NsPerCall([&] {
             for (const Trajectory* q : queries) {
               TrieIndex::SearchSpec spec;
               spec.query = q;
               spec.tau = tau;
               spec.mode = mode;
               spec.epsilon = epsilon;
               out.clear();
               trie.CollectCandidates(spec, &out);
               benchmark::DoNotOptimize(out.size());
             }
           }) /
           static_cast<double>(num_queries);
  };

  json += "  \"trie_collect_ns_per_query\": {\n";
  const std::pair<const char*, double> acc_taus[] = {
      {"tau_tight", 0.003}, {"tau_mid", 0.01}, {"tau_wide", 0.05}};
  json += "    \"accumulate\": {";
  for (size_t i = 0; i < 3; ++i) {
    const double ns = collect_ns(PruneMode::kAccumulate, acc_taus[i].second, 0.0);
    std::snprintf(buf, sizeof(buf), "\"%s\": %.1f", acc_taus[i].first, ns);
    json += buf;
    if (i + 1 < 3) json += ", ";
    std::printf("trie accumulate %-9s tau=%.3f %10.1f ns/query\n",
                acc_taus[i].first, acc_taus[i].second, ns);
  }
  json += "},\n";
  {
    const double ns = collect_ns(PruneMode::kMax, 0.01, 0.0);
    std::snprintf(buf, sizeof(buf), "    \"max\": {\"tau_mid\": %.1f},\n", ns);
    json += buf;
    std::printf("trie max       tau_mid   tau=0.010 %10.1f ns/query\n", ns);
  }
  {
    const double ns = collect_ns(PruneMode::kEditCount, 4.0, 0.005);
    std::snprintf(buf, sizeof(buf), "    \"edit\": {\"budget4\": %.1f}\n", ns);
    json += buf;
    std::printf("trie edit      budget=4            %10.1f ns/query\n", ns);
  }
  json += "  },\n";

  // --- Trie candidate-collection throughput, queries/sec (headline). ---
  double single_qps = 0.0;
  {
    const double ns = collect_ns(PruneMode::kAccumulate, 0.01, 0.0);
    single_qps = 1e9 / ns;
    std::snprintf(buf, sizeof(buf),
                  "  \"trie_collect_queries_per_sec\": %.0f,\n", single_qps);
    json += buf;
    std::printf("trie throughput (accumulate, tau=0.01) %12.0f queries/sec\n",
                single_qps);
  }

  // --- Batched candidate collection (DESIGN.md §5f): the same 64 queries
  // pushed through CollectCandidatesBatch in groups, sharing one traversal
  // per group. batch_1 exercises the batch entry point's single-query
  // delegation; the larger sizes show the shared-traversal gain. Candidate
  // sets are bit-identical to the single path (batch_filter_test).
  {
    std::vector<std::vector<uint32_t>> outs(num_queries);
    auto batch_qps = [&](size_t batch) {
      const double ns_per_round = NsPerCall([&] {
        for (size_t lo = 0; lo < num_queries; lo += batch) {
          const size_t hi = std::min(lo + batch, num_queries);
          std::vector<TrieIndex::BatchQuery> bq(hi - lo);
          for (size_t i = lo; i < hi; ++i) {
            bq[i - lo].spec.query = queries[i];
            bq[i - lo].spec.tau = 0.01;
            bq[i - lo].spec.mode = PruneMode::kAccumulate;
            outs[i].clear();
            bq[i - lo].out = &outs[i];
          }
          trie.CollectCandidatesBatch(bq.data(), bq.size());
        }
        benchmark::DoNotOptimize(outs[0].size());
      });
      return 1e9 / (ns_per_round / static_cast<double>(num_queries));
    };
    json += "  \"trie_collect_batch_queries_per_sec\": {";
    const size_t sizes[] = {1, 2, 8, 32, 64};
    double qps32 = 0.0;
    for (size_t i = 0; i < 5; ++i) {
      const double qps = batch_qps(sizes[i]);
      if (sizes[i] == 32) qps32 = qps;
      std::snprintf(buf, sizeof(buf), "\"batch_%zu\": %.0f%s", sizes[i], qps,
                    i + 1 < 5 ? ", " : "");
      json += buf;
      std::printf("trie batch=%-3zu (accumulate, tau=0.01) %12.0f queries/sec\n",
                  sizes[i], qps);
    }
    json += "},\n";
    std::snprintf(buf, sizeof(buf), "  \"speedup_batch_32\": %.2f,\n",
                  qps32 / single_qps);
    json += buf;
    std::printf("batch=32 speedup over single-query path %11.2fx\n",
                qps32 / single_qps);
  }

  // --- Global R-tree probe, ns/query. ---
  {
    Rng rng(17);
    std::vector<RTree::Entry> entries;
    for (uint32_t i = 0; i < 4096; ++i) {
      const Point lo{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
      const Point hi{lo.x + rng.Uniform(0.0, 0.02),
                     lo.y + rng.Uniform(0.0, 0.02)};
      entries.push_back(RTree::Entry{MBR(lo, hi), i});
    }
    RTree tree;
    tree.Build(std::move(entries), 16);
    std::vector<uint32_t> hits;
    size_t qi = 0;
    const double within_ns = NsPerCall([&] {
      const Point p{0.001 * static_cast<double>(qi % 1000), 0.5};
      hits.clear();
      tree.SearchWithinDistance(p, 0.05, &hits);
      benchmark::DoNotOptimize(hits.size());
      ++qi;
    });
    const MBR range(Point{0.4, 0.4}, Point{0.6, 0.6});
    const double isect_ns = NsPerCall([&] {
      hits.clear();
      tree.SearchIntersecting(range, &hits);
      benchmark::DoNotOptimize(hits.size());
    });
    std::snprintf(buf, sizeof(buf),
                  "  \"rtree_probe_ns_per_query\": {\"within\": %.1f, "
                  "\"intersect\": %.1f},\n",
                  within_ns, isect_ns);
    json += buf;
    std::printf("rtree within   %10.1f ns/query\nrtree intersect%10.1f ns/query\n",
                within_ns, isect_ns);
  }

  // --- Index build wall time. ---
  json += "  \"index_build\": {\n";
  {
    // Trie build over 4096 trajectories (the per-partition build unit),
    // best of 3 to shed timer noise.
    double best_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      TrieIndex t;
      WallTimer timer;
      if (!t.Build(ds.trajectories(), FilterTrieOptions()).ok()) return;
      best_ms = std::min(best_ms, timer.Millis());
    }
    std::snprintf(buf, sizeof(buf), "    \"trie_build_ms_4096\": %.2f,\n",
                  best_ms);
    json += buf;
    std::snprintf(buf, sizeof(buf), "    \"trie_build_traj_per_sec\": %.0f,\n",
                  4096.0 / (best_ms / 1e3));
    json += buf;
    std::printf("trie build     4096 traj %10.2f ms  (%.0f traj/sec)\n",
                best_ms, 4096.0 / (best_ms / 1e3));
  }
  {
    // Same build fanned over a pool (DitaConfig::build_threads): the digest
    // check proves the parallel path builds the identical structure while
    // it is being timed.
    const size_t threads =
        std::max<size_t>(2, std::thread::hardware_concurrency());
    ThreadPool pool(threads);
    TrieIndex serial;
    if (!serial.Build(ds.trajectories(), FilterTrieOptions()).ok()) return;
    double best_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      TrieIndex t;
      WallTimer timer;
      if (!t.Build(ds.trajectories(), FilterTrieOptions(), &pool).ok()) return;
      best_ms = std::min(best_ms, timer.Millis());
      if (t.StructureDigest() != serial.StructureDigest()) {
        std::fprintf(stderr, "parallel build diverged from serial\n");
        return;
      }
    }
    std::snprintf(buf, sizeof(buf),
                  "    \"trie_build_parallel_ms_4096\": %.2f,\n", best_ms);
    json += buf;
    std::printf("trie build     4096 traj %10.2f ms  (pool of %zu)\n", best_ms,
                threads);
  }
  {
    // Two-level STR partitioning of 16384 trajectories (the driver-side
    // bulk sort the engine runs before any trie exists).
    Dataset big = FilterDataset(16384, 72);
    double best_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer timer;
      auto parts = PartitionByFirstLast(big.trajectories(), 8);
      if (!parts.ok()) return;
      benchmark::DoNotOptimize(parts->size());
      best_ms = std::min(best_ms, timer.Millis());
    }
    std::snprintf(buf, sizeof(buf), "    \"partition_ms_16384\": %.2f\n",
                  best_ms);
    json += buf;
    std::printf("partition      16384 traj %9.2f ms\n", best_ms);
  }
  json += "  },\n";

  // --- Cell lower bound early abandonment (Lemma 5.6). ---
  // ns/pair for the DTW and Frechet cell bounds with abandon_above = tau
  // versus an unbounded scan over the same random summary pairs. The
  // abandoning scan returns a partial sum that is still a valid lower
  // bound, so verification's accept/reject decision is unchanged — the
  // speedup is pure.
  {
    std::vector<CellSummary> sums;
    for (size_t i = 0; i < 256; ++i) {
      sums.push_back(CompressToCells(ds[i], 0.01));
    }
    double sink = 0.0;
    auto pair_ns = [&](bool frechet, double abandon) {
      size_t idx = 0;
      return NsPerCall([&] {
        const CellSummary& a = sums[idx % sums.size()];
        const CellSummary& b = sums[(idx * 7 + 13) % sums.size()];
        sink += frechet ? CellLowerBoundFrechet(a, b, abandon)
                        : CellLowerBoundDtw(a, b, abandon);
        ++idx;
      });
    };
    const double inf = std::numeric_limits<double>::infinity();
    const double tau = 0.05;  // the trie sweep's tau_wide: abandon-friendly
    const double dtw_full = pair_ns(false, inf);
    const double dtw_ab = pair_ns(false, tau);
    const double fr_full = pair_ns(true, inf);
    const double fr_ab = pair_ns(true, tau);
    benchmark::DoNotOptimize(sink);
    json += "  \"cell_bound\": {\n";
    std::snprintf(buf, sizeof(buf),
                  "    \"dtw_ns_per_pair\": {\"no_abandon\": %.1f, "
                  "\"abandon_tau\": %.1f},\n",
                  dtw_full, dtw_ab);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "    \"frechet_ns_per_pair\": {\"no_abandon\": %.1f, "
                  "\"abandon_tau\": %.1f},\n",
                  fr_full, fr_ab);
    json += buf;
    std::snprintf(buf, sizeof(buf), "    \"dtw_abandon_speedup\": %.2f,\n",
                  dtw_full / dtw_ab);
    json += buf;
    std::snprintf(buf, sizeof(buf), "    \"frechet_abandon_speedup\": %.2f\n",
                  fr_full / fr_ab);
    json += buf;
    json += "  },\n";
    std::printf("cell bound dtw     %8.1f -> %8.1f ns/pair (%.2fx)\n",
                dtw_full, dtw_ab, dtw_full / dtw_ab);
    std::printf("cell bound frechet %8.1f -> %8.1f ns/pair (%.2fx)\n",
                fr_full, fr_ab, fr_full / fr_ab);
  }

  // --- Sketch prefilter A/B (DESIGN.md §5g). ---
  // Two engines over the same 4096 trajectories, identical except for
  // VerifyOptions::enable_sketch; the same 64 dataset queries run through
  // both. `wrong_answers` counts any result-set divergence and must be 0
  // (the signature test is provably exact); the prune fractions read the
  // sketch-on funnel's "sketch partitions" and "sketch signature" levels.
  {
    auto make_engine = [&](bool sketch) {
      ClusterConfig ccfg;
      ccfg.num_workers = 4;
      DitaConfig config;
      config.verify.enable_sketch = sketch;
      auto eng = std::make_unique<DitaEngine>(
          std::make_shared<Cluster>(ccfg), config);
      if (!eng->BuildIndex(ds).ok()) eng.reset();
      return eng;
    };
    auto off = make_engine(false);
    auto on = make_engine(true);
    if (off == nullptr || on == nullptr) {
      std::fprintf(stderr, "engine build failed\n");
      return;
    }
    auto funnel_level = [](const QueryStats& s, const char* label) {
      for (const auto& l : s.funnel.levels) {
        if (l.label == label) return static_cast<double>(l.survivors);
      }
      return -1.0;
    };
    const std::pair<const char*, double> sketch_taus[] = {
        {"tau_tight", 0.003}, {"tau_mid", 0.01}, {"tau_wide", 0.05}};
    size_t wrong = 0;
    double part_frac[3] = {0, 0, 0};
    double cand_frac[3] = {0, 0, 0};
    for (size_t ti = 0; ti < 3; ++ti) {
      double before_part = 0, after_part = 0, before_cand = 0, after_cand = 0;
      for (const Trajectory* q : queries) {
        QueryStats stats;
        auto want = off->Search(*q, sketch_taus[ti].second);
        auto got = on->Search(*q, sketch_taus[ti].second, &stats);
        if (!want.ok() || !got.ok() || *want != *got) ++wrong;
        before_part += std::max(0.0, funnel_level(stats, "global index"));
        after_part += std::max(0.0, funnel_level(stats, "sketch partitions"));
        before_cand += std::max(0.0, funnel_level(stats, "candidates"));
        after_cand += std::max(0.0, funnel_level(stats, "sketch signature"));
      }
      part_frac[ti] =
          before_part > 0 ? 1.0 - after_part / before_part : 0.0;
      cand_frac[ti] =
          before_cand > 0 ? 1.0 - after_cand / before_cand : 0.0;
    }
    // QPS at tau_wide: the regime where the candidate list is large and
    // verification dominates, so the level-0 prune has real work to save.
    // Best of 3 alternating windows per engine to shed scheduler noise —
    // single windows on a loaded machine swing ±10%, which would drown the
    // effect being measured.
    auto engine_qps = [&](const DitaEngine& eng) {
      const double ns = NsPerCall([&] {
        for (const Trajectory* q : queries) {
          auto r = eng.Search(*q, 0.05);
          benchmark::DoNotOptimize(r.ok());
        }
      });
      return 1e9 / (ns / static_cast<double>(num_queries));
    };
    double off_qps = 0.0, on_qps = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      off_qps = std::max(off_qps, engine_qps(*off));
      on_qps = std::max(on_qps, engine_qps(*on));
    }
    json += "  \"sketch\": {\n";
    std::snprintf(buf, sizeof(buf),
                  "    \"search_qps\": {\"off\": %.0f, \"on\": %.0f},\n",
                  off_qps, on_qps);
    json += buf;
    std::snprintf(buf, sizeof(buf), "    \"speedup\": %.2f,\n",
                  on_qps / off_qps);
    json += buf;
    json += "    \"prune_fraction_partitions\": {";
    for (size_t ti = 0; ti < 3; ++ti) {
      std::snprintf(buf, sizeof(buf), "\"%s\": %.3f%s", sketch_taus[ti].first,
                    part_frac[ti], ti + 1 < 3 ? ", " : "");
      json += buf;
    }
    json += "},\n";
    json += "    \"prune_fraction_candidates\": {";
    for (size_t ti = 0; ti < 3; ++ti) {
      std::snprintf(buf, sizeof(buf), "\"%s\": %.3f%s", sketch_taus[ti].first,
                    cand_frac[ti], ti + 1 < 3 ? ", " : "");
      json += buf;
    }
    json += "},\n";
    std::snprintf(buf, sizeof(buf), "    \"wrong_answers\": %zu\n", wrong);
    json += buf;
    json += "  }\n";
    std::printf("sketch search  off %.0f qps, on %.0f qps (%.2fx)\n", off_qps,
                on_qps, on_qps / off_qps);
    std::printf(
        "sketch prune   partitions %.1f%%/%.1f%%/%.1f%%  candidates "
        "%.1f%%/%.1f%%/%.1f%%  wrong=%zu\n",
        100 * part_frac[0], 100 * part_frac[1], 100 * part_frac[2],
        100 * cand_frac[0], 100 * cand_frac[1], 100 * cand_frac[2], wrong);
  }
  json += "}\n";

  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace dita

int main(int argc, char** argv) {
  bool skip_json = false;
  bool quick = false;
  const char* out = "BENCH_micro_filter.json";
  // Strip this binary's flags before handing argv to google-benchmark.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip_json") == 0) {
      skip_json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (quick) dita::g_measure_seconds = 0.01;
  if (!skip_json) dita::WriteFilterJson(out);
  if (quick) return 0;  // smoke mode: JSON only, skip google-benchmark
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
