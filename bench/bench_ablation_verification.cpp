// Ablation: the verification pipeline's stages (§5.3.3). Join cost with the
// full pipeline, without MBR coverage filtering, without the cell-based
// bound, and with neither (plain double-direction DP), on a city workload
// (short trips — cells cheap) and an OSM-like workload (long traces — cells
// expensive). Shows each filter's contribution and where it stops paying.

#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {
namespace {

void Run(const Args& args) {
  struct Panel {
    const char* name;
    Dataset data;
    double cell_size;
  };
  std::vector<Panel> panels;
  panels.push_back({"Beijing", GenerateBeijingLike(args.scale * 2.0, 42), 0.005});
  {
    auto osm = GenerateOsmLike(args.scale * 0.5, 44).Sample(1.0, 1);
    DITA_CHECK(osm.ok());
    panels.push_back({"OSM", std::move(*osm), 0.02});
  }
  const double tau = 0.003;

  for (const auto& panel : panels) {
    PrintHeader(StrFormat("verification ablation on %s (tau=%.3f)", panel.name,
                          tau),
                {"join_s", "cand_pairs", "result_pairs"});
    for (int mask = 0; mask < 4; ++mask) {
      const bool mbr_on = (mask & 1) == 0;
      const bool cell_on = (mask & 2) == 0;
      DitaConfig config = DefaultConfig();
      config.verify.cell_size = panel.cell_size;
      config.verify.enable_mbr = mbr_on;
      config.verify.enable_cell = cell_on;
      auto cluster = MakeCluster(args.workers);
      DitaEngine engine(cluster, config);
      DITA_CHECK(engine.BuildIndex(panel.data).ok());
      DitaEngine::JoinStats stats;
      DITA_CHECK(engine.Join(engine, tau, &stats).ok());
      PrintRow(StrFormat("mbr=%d cell=%d", mbr_on, cell_on),
               {stats.makespan_seconds, double(stats.candidate_pairs),
                double(stats.result_pairs)},
               "%12.4f");
    }
  }
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Ablation: verification pipeline stages (DTW joins)\n");
  std::printf("scale=%.2f workers=%zu\n", args.scale, args.workers);
  dita::bench::Run(args);
  return 0;
}
