// Figure 17 (Appendix C): centralized comparison on a Chengdu(tiny)-like
// dataset. (a) candidates per query and (b) query time for MBE vs DITA under
// DTW; (c) candidates and (d) time for MBE, VP-tree, DITA under Frechet.
// "Candidates" = trajectories surviving each method's filter (distance
// evaluations for the VP-tree, which has no filter/verify split).

#include "baselines/centralized_dita.h"
#include "baselines/mbe.h"
#include "baselines/vptree.h"
#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dita::bench {
namespace {

void Run(const Args& args) {
  GeneratorConfig cfg;
  cfg.cardinality = static_cast<size_t>(6000 * args.scale);
  cfg.seed = 61;
  cfg.region = MBR(Point{103.9, 30.5}, Point{104.3, 30.9});
  cfg.avg_len = 38.0;
  cfg.min_len = 6;
  cfg.max_len = 205;
  const Dataset data = GenerateTaxiDataset(cfg);
  const auto queries = data.SampleQueries(args.queries, 1001);
  const auto taus = PaperTaus();
  std::vector<std::string> cols;
  for (double tau : taus) cols.push_back(StrFormat("%.3f", tau));

  DitaConfig dita_config = DefaultConfig();

  for (DistanceType distance : {DistanceType::kDTW, DistanceType::kFrechet}) {
    const char* dname = DistanceTypeName(distance);
    dita_config.distance = distance;

    CentralizedDita dita;
    DITA_CHECK(dita.Build(data, dita_config).ok());
    MbeIndex mbe;
    DITA_CHECK(mbe.Build(data, distance).ok());
    VpTree vptree;
    const bool with_vptree = distance == DistanceType::kFrechet;
    if (with_vptree) DITA_CHECK(vptree.Build(data, distance).ok());

    std::vector<double> mbe_cands, dita_cands, vp_cands;
    std::vector<double> mbe_ms, dita_ms, vp_ms;
    for (double tau : taus) {
      double mc = 0, dc = 0, vc = 0, mt = 0, dt = 0, vt = 0;
      for (const auto& q : queries) {
        {
          WallTimer timer;
          MbeIndex::SearchStats stats;
          DITA_CHECK(mbe.Search(q, tau, &stats).ok());
          mt += timer.Millis();
          mc += double(stats.candidates);
        }
        {
          WallTimer timer;
          CentralizedDita::SearchStats stats;
          DITA_CHECK(dita.Search(q, tau, &stats).ok());
          dt += timer.Millis();
          dc += double(stats.candidates);
        }
        if (with_vptree) {
          WallTimer timer;
          VpTree::SearchStats stats;
          DITA_CHECK(vptree.Search(q, tau, &stats).ok());
          vt += timer.Millis();
          vc += double(stats.distance_evals);
        }
      }
      const double n = double(queries.size());
      mbe_cands.push_back(mc / n);
      dita_cands.push_back(dc / n);
      mbe_ms.push_back(mt / n);
      dita_ms.push_back(dt / n);
      if (with_vptree) {
        vp_cands.push_back(vc / n);
        vp_ms.push_back(vt / n);
      }
    }

    PrintHeader(StrFormat("candidates per query (%s)", dname), cols);
    PrintRow("MBE", mbe_cands, "%12.1f");
    if (with_vptree) PrintRow("VP-Tree", vp_cands, "%12.1f");
    PrintRow("DITA", dita_cands, "%12.1f");

    PrintHeader(StrFormat("query time ms (%s), real wall clock", dname), cols);
    PrintRow("MBE", mbe_ms, "%12.3f");
    if (with_vptree) PrintRow("VP-Tree", vp_ms, "%12.3f");
    PrintRow("DITA", dita_ms, "%12.3f");
  }
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  if (args.queries == 50) args.queries = 30;
  std::printf(
      "Figure 17 reproduction: centralized baselines on Chengdu(tiny)-like\n");
  std::printf("scale=%.2f queries=%zu\n", args.scale, args.queries);
  dita::bench::Run(args);
  return 0;
}
