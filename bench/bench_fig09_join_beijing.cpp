// Figure 9: trajectory similarity join on Beijing(-like) data with DTW.
// Panels (a)-(d); series Simba / DITA (the paper drops Naive and DFT:
// Naive never completes and DFT's bitmaps need terabytes, §7.2.2);
// values in cost-model seconds.

#include "bench/join_figure.h"

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Figure 9 reproduction: join on Beijing-like data (DTW)\n");
  std::printf("scale=%.2f workers=%zu\n", args.scale, args.workers);
  dita::Dataset full = dita::GenerateBeijingLike(args.scale * 2.0, 42);
  dita::bench::RunJoinFigure(args, full, "Beijing");
  return 0;
}
