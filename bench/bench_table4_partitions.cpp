// Table 4 (Appendix B): varying the number of partitions N_G. Search ms and
// join seconds for Beijing- and Chengdu-like data; total partitions =
// N_G * N_G. The paper's knee is at N_G = 64/128 for 10M+ trajectories; the
// reproduced observation is the U-shape (too few partitions = no
// parallelism, too many = transfer/probing overhead).

#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {
namespace {

void Run(const Args& args) {
  struct Panel {
    const char* name;
    Dataset data;
  };
  std::vector<Panel> panels;
  panels.push_back({"Beijing", GenerateBeijingLike(args.scale, 42)});
  panels.push_back({"Chengdu", GenerateChengduLike(args.scale, 43)});
  const double tau = 0.003;

  for (const auto& panel : panels) {
    const auto queries = panel.data.SampleQueries(args.queries, 1001);
    PrintHeader(StrFormat("Table 4 on %s (tau=%.3f)", panel.name, tau),
                {"search_ms", "join_s"});
    for (size_t ng : {2u, 4u, 8u, 16u}) {
      DitaConfig config = DefaultConfig();
      config.build.ng = ng;
      auto cluster = MakeCluster(args.workers);
      DitaEngine engine(cluster, config);
      DITA_CHECK(engine.BuildIndex(panel.data).ok());

      double search_ms = 0;
      for (const auto& q : queries) {
        DitaEngine::QueryStats stats;
        DITA_CHECK(engine.Search(q, tau, &stats).ok());
        search_ms += stats.makespan_seconds * 1e3;
      }
      search_ms /= double(queries.size());

      DitaEngine::JoinStats jstats;
      DITA_CHECK(engine.Join(engine, tau, &jstats).ok());
      PrintRow(StrFormat("N_G=%zu (%zu parts)", ng,
                         engine.index_stats().num_partitions),
               {search_ms, jstats.makespan_seconds}, "%12.4f");
    }
  }
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Table 4 reproduction: varying number of partitions (DTW)\n");
  std::printf("scale=%.2f queries=%zu workers=%zu\n", args.scale, args.queries,
              args.workers);
  dita::bench::Run(args);
  return 0;
}
