#ifndef DITA_BENCH_SEARCH_FIGURE_H_
#define DITA_BENCH_SEARCH_FIGURE_H_

// Shared driver for the Figure 7 / Figure 8 search comparisons: four panels
// (vary tau, scalability, scale-up, scale-out), four engines (Naive, Simba,
// DFT, DITA), values in per-query cost-model milliseconds.

#include <map>

#include "baselines/dft.h"
#include "baselines/naive.h"
#include "baselines/simba.h"
#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {

struct SearchEngines {
  std::unique_ptr<NaiveEngine> naive;
  std::unique_ptr<SimbaEngine> simba;
  std::unique_ptr<DftEngine> dft;
  std::unique_ptr<DitaEngine> dita;

  std::vector<std::pair<std::string, SearchFn>> Fns() {
    return {
        {"Naive",
         [this](const Trajectory& q, double tau, DitaEngine::QueryStats* s) {
           return naive->Search(q, tau, s);
         }},
        {"Simba",
         [this](const Trajectory& q, double tau, DitaEngine::QueryStats* s) {
           return simba->Search(q, tau, s);
         }},
        {"DFT",
         [this](const Trajectory& q, double tau, DitaEngine::QueryStats* s) {
           return dft->Search(q, tau, s);
         }},
        {"DITA",
         [this](const Trajectory& q, double tau, DitaEngine::QueryStats* s) {
           return dita->Search(q, tau, s);
         }},
    };
  }
};

inline SearchEngines BuildSearchEngines(const Dataset& data, size_t workers,
                                        DistanceType distance,
                                        const DitaConfig& dita_config) {
  SearchEngines e;
  auto cluster = MakeCluster(workers);
  e.naive = std::make_unique<NaiveEngine>(cluster, distance);
  e.simba = std::make_unique<SimbaEngine>(cluster, distance);
  e.dft = std::make_unique<DftEngine>(cluster, distance);
  DitaConfig config = dita_config;
  config.distance = distance;
  e.dita = std::make_unique<DitaEngine>(cluster, config);
  DITA_CHECK(e.naive->BuildIndex(data).ok());
  DITA_CHECK(e.simba->BuildIndex(data).ok());
  DITA_CHECK(e.dft->BuildIndex(data).ok());
  DITA_CHECK(e.dita->BuildIndex(data).ok());
  return e;
}

inline void RunSearchFigure(const Args& args, const Dataset& full,
                            const char* dataset_name, DistanceType distance) {
  const auto queries = full.SampleQueries(args.queries, 1001);
  const auto taus = PaperTaus();
  const double default_tau = 0.003;
  const DitaConfig config = DefaultConfig();
  const std::vector<const char*> order = {"Naive", "Simba", "DFT", "DITA"};

  // (a) varying tau at full size, default workers.
  {
    std::vector<std::string> cols;
    for (double tau : taus) cols.push_back(StrFormat("%.3f", tau));
    PrintHeader(StrFormat("(a) vary tau on %s, search ms", dataset_name), cols);
    SearchEngines e = BuildSearchEngines(full, args.workers, distance, config);
    for (auto& [name, fn] : e.Fns()) {
      std::vector<double> row;
      for (double tau : taus) row.push_back(AvgSearchMs(fn, queries, tau));
      PrintRow(name, row);
    }
  }

  // (b) scalability: dataset sample-rate sweep.
  {
    const std::vector<double> rates = {0.25, 0.5, 0.75, 1.0};
    std::vector<std::string> cols;
    for (double r : rates) cols.push_back(StrFormat("%.2f", r));
    PrintHeader(StrFormat("(b) scalability on %s (tau=%.3f), search ms",
                          dataset_name, default_tau),
                cols);
    std::map<std::string, std::vector<double>> rows;
    for (double rate : rates) {
      auto sampled = full.Sample(rate, 7);
      DITA_CHECK(sampled.ok());
      SearchEngines e =
          BuildSearchEngines(*sampled, args.workers, distance, config);
      for (auto& [name, fn] : e.Fns()) {
        rows[name].push_back(AvgSearchMs(fn, queries, default_tau));
      }
    }
    for (const char* name : order) PrintRow(name, rows[name]);
  }

  // (c) scale-up: worker sweep at full size.
  {
    const std::vector<size_t> cores = {4, 8, 12, 16};
    std::vector<std::string> cols;
    for (size_t c : cores) cols.push_back(StrFormat("%zuc", c));
    PrintHeader(StrFormat("(c) scale-up on %s (tau=%.3f), search ms",
                          dataset_name, default_tau),
                cols);
    std::map<std::string, std::vector<double>> rows;
    for (size_t c : cores) {
      SearchEngines e = BuildSearchEngines(full, c, distance, config);
      for (auto& [name, fn] : e.Fns()) {
        rows[name].push_back(AvgSearchMs(fn, queries, default_tau));
      }
    }
    for (const char* name : order) PrintRow(name, rows[name]);
  }

  // (d) scale-out: rate and cores grow together.
  {
    const std::vector<std::pair<double, size_t>> scales = {
        {0.25, 4}, {0.5, 8}, {0.75, 12}, {1.0, 16}};
    std::vector<std::string> cols;
    for (auto& [r, c] : scales) cols.push_back(StrFormat("%.2f,%zuc", r, c));
    PrintHeader(StrFormat("(d) scale-out on %s (tau=%.3f), search ms",
                          dataset_name, default_tau),
                cols);
    std::map<std::string, std::vector<double>> rows;
    for (auto& [rate, c] : scales) {
      auto sampled = full.Sample(rate, 7);
      DITA_CHECK(sampled.ok());
      SearchEngines e = BuildSearchEngines(*sampled, c, distance, config);
      for (auto& [name, fn] : e.Fns()) {
        rows[name].push_back(AvgSearchMs(fn, queries, default_tau));
      }
    }
    for (const char* name : order) PrintRow(name, rows[name]);
  }
}

}  // namespace dita::bench

#endif  // DITA_BENCH_SEARCH_FIGURE_H_
