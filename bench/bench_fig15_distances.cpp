// Figure 15: DITA with other distance functions.
// (a) DTW and Frechet join seconds vs tau in {0.001..0.005} on Beijing- and
// Chengdu-like data; (b) EDR and LCSS join seconds vs tau in {1..5}
// (epsilon = 0.0001, delta = 3, the paper's parameters).

#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {
namespace {

double JoinSeconds(const Dataset& data, size_t workers, DistanceType distance,
                   double tau) {
  auto cluster = MakeCluster(workers);
  DitaConfig config = DefaultConfig();
  config.distance = distance;
  config.distance_params.epsilon = 0.0001;
  config.distance_params.delta = 3;
  DitaEngine engine(cluster, config);
  DITA_CHECK(engine.BuildIndex(data).ok());
  DitaEngine::JoinStats stats;
  DITA_CHECK(engine.Join(engine, tau, &stats).ok());
  return stats.makespan_seconds;
}

void Run(const Args& args) {
  struct Panel {
    const char* name;
    Dataset data;
  };
  std::vector<Panel> panels;
  panels.push_back({"Beijing", GenerateBeijingLike(args.scale, 42)});
  panels.push_back({"Chengdu", GenerateChengduLike(args.scale, 43)});

  {
    const auto taus = PaperTaus();
    std::vector<std::string> cols;
    for (double tau : taus) cols.push_back(StrFormat("%.3f", tau));
    PrintHeader("(a) DTW and Frechet join seconds", cols);
    for (const auto& panel : panels) {
      for (DistanceType d : {DistanceType::kDTW, DistanceType::kFrechet}) {
        std::vector<double> row;
        for (double tau : taus) {
          row.push_back(JoinSeconds(panel.data, args.workers, d, tau));
        }
        PrintRow(StrFormat("%s(%s)", DistanceTypeName(d), panel.name), row,
                 "%12.4f");
      }
    }
  }

  {
    const std::vector<double> taus = {1, 2, 3, 4, 5};
    std::vector<std::string> cols;
    for (double tau : taus) cols.push_back(StrFormat("%.0f", tau));
    PrintHeader("(b) EDR and LCSS join seconds (eps=0.0001, delta=3)", cols);
    for (const auto& panel : panels) {
      // Edit-distance joins prune far less (an edit budget of up to 5 over
      // only K+2 trie levels), so this panel runs on a half sample.
      auto sampled = panel.data.Sample(0.5, 7);
      DITA_CHECK(sampled.ok());
      for (DistanceType d : {DistanceType::kEDR, DistanceType::kLCSS}) {
        std::vector<double> row;
        for (double tau : taus) {
          row.push_back(JoinSeconds(*sampled, args.workers, d, tau));
        }
        PrintRow(StrFormat("%s(%s)", DistanceTypeName(d), panel.name), row,
                 "%12.4f");
      }
    }
  }
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Figure 15 reproduction: other distance functions\n");
  std::printf("scale=%.2f workers=%zu\n", args.scale, args.workers);
  dita::bench::Run(args);
  return 0;
}
