// Figure 16: load balancing evaluation. "DITA" = graph orientation +
// division-based balancing on; "Naive" = both off. Panels: per-dataset load
// ratio (busiest / least busy worker) and total join time vs tau. The
// workload uses Zipf route popularity so some partitions are inherently hot
// (the straggler scenario of §6.3).

#include <map>

#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {
namespace {

void Run(const Args& args) {
  const auto taus = PaperTaus();
  std::vector<std::string> cols;
  for (double tau : taus) cols.push_back(StrFormat("%.3f", tau));

  struct Panel {
    const char* name;
    Dataset data;
  };
  std::vector<Panel> panels;
  {
    // Beijing-like with Zipf route popularity: hot partitions emerge.
    GeneratorConfig cfg;
    cfg.cardinality = static_cast<size_t>(12000 * args.scale);
    cfg.route_skew = 1.1;
    cfg.seed = 49;
    cfg.region = MBR(Point{116.0, 39.6}, Point{116.8, 40.2});
    cfg.avg_len = 22.0;
    cfg.min_len = 7;
    cfg.max_len = 112;
    panels.push_back({"Beijing", GenerateTaxiDataset(cfg)});
  }
  {
    GeneratorConfig cfg;
    cfg.cardinality = static_cast<size_t>(16000 * args.scale);
    cfg.route_skew = 1.1;
    cfg.seed = 50;
    cfg.region = MBR(Point{103.9, 30.5}, Point{104.3, 30.9});
    cfg.avg_len = 37.0;
    cfg.min_len = 10;
    cfg.max_len = 209;
    panels.push_back({"Chengdu", GenerateTaxiDataset(cfg)});
  }

  for (const auto& panel : panels) {
    PrintHeader(StrFormat("load ratio on %s (skewed routes)", panel.name), cols);
    std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
        rows;  // name -> (ratios, seconds)
    for (bool balanced : {true, false}) {
      DitaConfig config = DefaultConfig();
      // More partitions than workers so orientation/division have room to
      // redistribute work (the paper runs 4096 partitions on 256 cores).
      config.build.ng = 8;
      config.enable_graph_orientation = balanced;
      config.enable_division_balancing = balanced;
      const char* name = balanced ? "DITA" : "Naive";
      for (double tau : taus) {
        auto cluster = MakeCluster(args.workers);
        DitaEngine engine(cluster, config);
        DITA_CHECK(engine.BuildIndex(panel.data).ok());
        DitaEngine::JoinStats stats;
        DITA_CHECK(engine.Join(engine, tau, &stats).ok());
        rows[name].first.push_back(stats.load_ratio);
        rows[name].second.push_back(stats.makespan_seconds);
      }
    }
    PrintRow("DITA ratio", rows["DITA"].first, "%12.2f");
    PrintRow("Naive ratio", rows["Naive"].first, "%12.2f");
    PrintRow("DITA time(s)", rows["DITA"].second, "%12.4f");
    PrintRow("Naive time(s)", rows["Naive"].second, "%12.4f");
  }
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Figure 16 reproduction: load balancing (DTW)\n");
  std::printf("scale=%.2f workers=%zu\n", args.scale, args.workers);
  dita::bench::Run(args);
  return 0;
}
