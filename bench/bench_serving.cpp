// The serving runtime under sustained load: a seeded open-loop arrival
// process (exponential inter-arrivals, mixed search/kNN traffic, a bulk
// self-join riding along at low priority) against a DitaService whose table
// is mutating the whole time — a writer streams far-region inserts/deletes
// fast enough to cross the merge threshold repeatedly, so background epoch
// merges rebuild the base indexes mid-measurement.
//
// Reported per run:
//  * sustained QPS and open-loop p50/p99 wall latency (measured from the
//    *scheduled* arrival instant, so queue wait and coordinated omission
//    are charged to the service, not hidden by a slow issuer);
//  * ingest volume, epoch merges completed, final epoch;
//  * wrong_answers — every point query's result is compared against a
//    batch-engine oracle precomputed on the untouched base region (writers
//    only touch a far-away region, so base answers are version-independent
//    no matter which snapshot a query pins), and a final self-join is
//    compared against a fresh batch engine on the settled live set. The
//    serving runtime's contract is exactness; this must print 0.
//
// Emits BENCH_serving.json next to the other BENCH_*.json files.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serving/service.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset Region(size_t n, uint64_t seed, double lo, double hi) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{lo, lo}, Point{hi, hi});
  cfg.step = 0.01;
  cfg.avg_len = 24;
  cfg.min_len = 6;
  cfg.max_len = 64;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

double PercentileMs(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * double(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Service-side p50/p95/p99/p999 upper bounds (ms) read off one of the
/// always-on log-bucketed latency histograms (DESIGN.md §5h): mergeable
/// across kinds/shards and within 6.25% of the true sample quantile.
struct HistQuantilesMs {
  uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

HistQuantilesMs QuantilesMs(const obs::Histogram::Snapshot& snap) {
  HistQuantilesMs q;
  q.count = snap.count;
  q.p50 = snap.QuantileUpperBound(0.50) * 1e3;
  q.p95 = snap.QuantileUpperBound(0.95) * 1e3;
  q.p99 = snap.QuantileUpperBound(0.99) * 1e3;
  q.p999 = snap.QuantileUpperBound(0.999) * 1e3;
  return q;
}

struct RunResult {
  size_t queries = 0;
  size_t wrong_answers = 0;
  double elapsed_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t inserts = 0;
  size_t deletes = 0;
  uint64_t merges = 0;
  uint64_t final_epoch = 0;
  double join_seconds = 0.0;
  size_t join_pairs = 0;
  bool join_matches_oracle = false;
  uint64_t scheduler_bypasses = 0;
  uint64_t scheduler_shed = 0;
  // Always-on serving observability rollup, taken from the same service
  // the open-loop window ran against.
  HistQuantilesMs hist_search;
  HistQuantilesMs hist_knn;
  HistQuantilesMs hist_join;
  HistQuantilesMs hist_queue_wait;
  uint64_t shed = 0;
  uint64_t degraded = 0;
  uint64_t recorded = 0;
  std::string flight_json;  // DumpFlightRecorder() of the loaded service
};

/// Micro-batching A/B over the Submit path: the same saturating burst
/// workload of coalescible searches against two otherwise-identical
/// services, one with coalescing disabled (max_batch_size = 1) and one
/// batching up to 16 queued requests per executor drain. Every answer is
/// checked against per-probe ground truth captured via Execute, so the
/// reported gain is for bit-identical results.
struct BatchingResult {
  double off_qps = 0.0;
  double on_qps = 0.0;
  double gain = 0.0;
  uint64_t batches = 0;
  double avg_batch = 0.0;
  size_t wrong_answers = 0;
};

BatchingResult RunBatching(const bench::Args& args) {
  BatchingResult out;
  const size_t base_n = static_cast<size_t>(1200 * args.scale);
  const Dataset base = Region(base_n, 47, 0.0, 1.0);
  const double tau = 0.003;
  const double window_s = args.quick ? 0.3 : 1.5;
  constexpr size_t kProbes = 16;
  constexpr size_t kBurst = 64;

  auto run_mode = [&](size_t max_batch, uint64_t* batches, double* avg_batch,
                      size_t* wrong) -> double {
    DitaConfig config = bench::DefaultConfig();
    config.serving.scheduler_threads = 2;
    config.serving.max_batch_size = max_batch;
    auto cluster = bench::MakeCluster(args.workers);
    DitaService service(cluster, config);
    DITA_CHECK(service.Start(base).ok());

    std::vector<const Trajectory*> probes;
    std::vector<std::vector<TrajectoryId>> expect(kProbes);
    for (size_t i = 0; i < kProbes; ++i) {
      probes.push_back(&base[(i * 193) % base.size()]);
      QueryRequest req;
      req.kind = QueryKind::kSearch;
      req.query = *probes[i];
      req.tau = tau;
      auto r = service.Execute(req);
      DITA_CHECK(r.ok());
      expect[i] = r->ids;
    }

    // Closed-loop saturating bursts: enqueue kBurst compatible searches,
    // then drain. The backlog is what gives the coalescing executor
    // something to batch; the off-mode run pays the same enqueue pattern.
    size_t done = 0;
    std::mt19937_64 rng(1234);
    WallTimer timer;
    while (timer.Seconds() < window_s) {
      std::vector<std::future<Result<QueryResult>>> futs;
      futs.reserve(kBurst);
      std::vector<size_t> pis(kBurst);
      for (size_t i = 0; i < kBurst; ++i) {
        pis[i] = size_t(rng()) % kProbes;
        QueryRequest req;
        req.kind = QueryKind::kSearch;
        req.query = *probes[pis[i]];
        req.tau = tau;
        futs.push_back(service.Submit(std::move(req)));
      }
      for (size_t i = 0; i < kBurst; ++i) {
        auto r = futs[i].get();
        ++done;
        if (!r.ok() || r->ids != expect[pis[i]]) ++*wrong;
      }
    }
    const double qps = double(done) / timer.Seconds();
    *batches = service.coalesced_batches();
    *avg_batch = service.coalesced_batches() > 0
                     ? double(service.coalesced_queries()) /
                           double(service.coalesced_batches())
                     : 0.0;
    service.Stop();
    return qps;
  };

  uint64_t off_batches = 0;
  double off_avg = 0.0;
  out.off_qps = run_mode(1, &off_batches, &off_avg, &out.wrong_answers);
  out.on_qps = run_mode(16, &out.batches, &out.avg_batch, &out.wrong_answers);
  out.gain = out.off_qps > 0.0 ? out.on_qps / out.off_qps : 0.0;
  return out;
}

/// Answer-cache A/B (DESIGN.md §5g): the same skewed repeating read
/// workload — 80% of traffic on 4 hot probes, the rest on a 12-probe warm
/// set — against two otherwise-identical services, one with the answer
/// cache off (the default) and one holding 256 entries. A far-region
/// insert lands every burst, so the on-mode run pays an epoch publish and
/// a full cache invalidation per burst and still has to win. Every answer
/// is compared against ground truth captured before the window (far-region
/// writes cannot change base-region answers), so the gain is for
/// bit-identical results.
struct CacheResult {
  double off_qps = 0.0;
  double on_qps = 0.0;
  double gain = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  size_t wrong_answers = 0;
};

CacheResult RunCache(const bench::Args& args) {
  CacheResult out;
  const size_t base_n = static_cast<size_t>(1200 * args.scale);
  const Dataset base = Region(base_n, 53, 0.0, 1.0);
  const Dataset far = Region(256, 54, 10.0, 11.0);
  const double tau = 0.003;
  const double window_s = args.quick ? 0.3 : 1.5;
  constexpr size_t kProbes = 16;
  constexpr size_t kBurst = 256;

  auto run_mode = [&](size_t cache_entries, uint64_t* hits, uint64_t* misses,
                      uint64_t* invalidations, size_t* wrong) -> double {
    DitaConfig config = bench::DefaultConfig();
    config.serving.scheduler_threads = 2;
    config.serving.answer_cache_entries = cache_entries;
    auto cluster = bench::MakeCluster(args.workers);
    DitaService service(cluster, config);
    DITA_CHECK(service.Start(base).ok());

    std::vector<const Trajectory*> probes;
    std::vector<std::vector<TrajectoryId>> expect(kProbes);
    for (size_t i = 0; i < kProbes; ++i) {
      probes.push_back(&base[(i * 211) % base.size()]);
      QueryRequest req;
      req.kind = QueryKind::kSearch;
      req.query = *probes[i];
      req.tau = tau;
      auto r = service.Execute(req);
      DITA_CHECK(r.ok());
      expect[i] = r->ids;
    }

    size_t done = 0;
    size_t writes = 0;
    std::mt19937_64 rng(5678);
    WallTimer timer;
    while (timer.Seconds() < window_s) {
      // One far-region insert per burst: the epoch bump invalidates the
      // whole cache mid-stream without changing any base-region answer.
      if (writes < far.size()) {
        DITA_CHECK(service
                       .Insert(Trajectory(TrajectoryId(70000 + writes),
                                          far[writes].points()))
                       .ok());
        ++writes;
      }
      for (size_t i = 0; i < kBurst; ++i) {
        const size_t pi = (rng() % 10) < 8 ? rng() % 4 : 4 + rng() % 12;
        QueryRequest req;
        req.kind = QueryKind::kSearch;
        req.query = *probes[pi];
        req.tau = tau;
        auto r = service.Execute(req);
        ++done;
        if (!r.ok() || r->ids != expect[pi]) ++*wrong;
      }
    }
    const double qps = double(done) / timer.Seconds();
    *hits = service.cache_hits();
    *misses = service.cache_misses();
    *invalidations = service.cache_invalidations();
    service.Stop();
    return qps;
  };

  uint64_t off_hits = 0, off_misses = 0, off_inval = 0;
  out.off_qps =
      run_mode(0, &off_hits, &off_misses, &off_inval, &out.wrong_answers);
  out.on_qps = run_mode(256, &out.hits, &out.misses, &out.invalidations,
                        &out.wrong_answers);
  out.gain = out.off_qps > 0.0 ? out.on_qps / out.off_qps : 0.0;
  return out;
}

RunResult Run(const bench::Args& args) {
  RunResult out;
  const size_t base_n = static_cast<size_t>(1200 * args.scale);
  const size_t far_n = static_cast<size_t>(320 * args.scale);
  const Dataset base = Region(base_n, 42, 0.0, 1.0);
  const Dataset far = Region(far_n, 43, 10.0, 11.0);

  DitaConfig config = bench::DefaultConfig();
  config.serving.merge_threshold = 64;  // several epoch merges per run
  config.serving.scheduler_threads = 2;
  auto cluster = bench::MakeCluster(args.workers);
  DitaService service(cluster, config);
  DITA_CHECK(service.Start(base).ok());

  // Oracle answers on the untouched base region (far-region ingest cannot
  // change them, whichever snapshot version a query later pins).
  constexpr size_t kProbes = 24;
  const double tau = 0.003;
  const size_t k = 5;
  std::vector<const Trajectory*> probes;
  std::vector<std::vector<TrajectoryId>> expect_search(kProbes);
  std::vector<std::vector<std::pair<TrajectoryId, double>>> expect_knn(kProbes);
  for (size_t i = 0; i < kProbes; ++i) {
    probes.push_back(&base[(i * 131) % base.size()]);
    QueryRequest sr;
    sr.kind = QueryKind::kSearch;
    sr.query = *probes[i];
    sr.tau = tau;
    auto s = service.Execute(sr);
    DITA_CHECK(s.ok());
    expect_search[i] = s->ids;
    QueryRequest kr;
    kr.kind = QueryKind::kKnnSearch;
    kr.query = *probes[i];
    kr.k = k;
    auto n = service.Execute(kr);
    DITA_CHECK(n.ok());
    expect_knn[i] = n->neighbors;
  }

  // --- The measured window: writer + open-loop query issuers + one bulk
  // low-priority self-join sharing the slot pool.
  using Clock = std::chrono::steady_clock;
  const double run_seconds = args.quick ? 0.6 : 3.0;
  const double target_qps = 150.0 * double(std::max<size_t>(args.queries, 1)) / 50.0;
  const auto t0 = Clock::now();

  std::atomic<size_t> inserts{0}, deletes{0}, wrong{0};
  std::thread writer([&] {
    // Spread the far-region stream across the window; every 4th op (after
    // a warm buffer) retires an older insert so merges see real deletes.
    const double gap_s = run_seconds / double(far.size());
    for (size_t i = 0; i < far.size(); ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration<double>(gap_s * double(i)));
      if (service.Insert(Trajectory(TrajectoryId(50000 + i),
                                    far[i].points()))
              .ok()) {
        ++inserts;
      }
      if (i >= 40 && i % 4 == 0 &&
          service.Delete(TrajectoryId(50000 + i - 40)).ok()) {
        ++deletes;
      }
    }
  });

  std::thread joiner([&] {
    QueryRequest req;
    req.kind = QueryKind::kJoin;
    req.tau = tau;
    req.priority = 2;  // bulk analytics: fair-share keeps searches flowing
    WallTimer timer;
    auto r = service.Execute(req);
    out.join_seconds = timer.Seconds();
    if (r.ok()) out.join_pairs = r->pairs.size();
  });

  // Open-loop arrivals: one seeded exponential schedule, dealt round-robin
  // to a fixed issuer pool; each latency is completion minus *scheduled*
  // arrival.
  constexpr size_t kIssuers = 6;
  std::vector<std::vector<double>> arrivals(kIssuers);
  {
    std::mt19937_64 rng(20260808);
    std::exponential_distribution<double> gap(target_qps);
    double t = 0.0;
    for (size_t i = 0; t < run_seconds; ++i) {
      t += gap(rng);
      arrivals[i % kIssuers].push_back(t);
    }
  }
  std::vector<std::vector<double>> latencies(kIssuers);
  std::vector<std::thread> issuers;
  for (size_t w = 0; w < kIssuers; ++w) {
    issuers.emplace_back([&, w] {
      std::mt19937_64 rng(7700 + w);
      for (size_t i = 0; i < arrivals[w].size(); ++i) {
        const auto due =
            t0 + std::chrono::duration<double>(arrivals[w][i]);
        std::this_thread::sleep_until(due);
        const size_t pi = size_t(rng()) % kProbes;
        const bool knn = (rng() % 5) == 0;  // 20% kNN, 80% search
        QueryRequest req;
        req.query = *probes[pi];
        req.priority = 0;
        if (knn) {
          req.kind = QueryKind::kKnnSearch;
          req.k = k;
        } else {
          req.kind = QueryKind::kSearch;
          req.tau = tau;
        }
        auto r = service.Execute(req);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - due)
                .count();
        if (!r.ok()) {
          ++wrong;
          continue;
        }
        latencies[w].push_back(ms);
        if (knn ? (r->neighbors != expect_knn[pi])
                : (r->ids != expect_search[pi])) {
          ++wrong;
        }
      }
    });
  }
  for (auto& th : issuers) th.join();
  writer.join();
  joiner.join();
  out.elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // --- Settle and run the join oracle on the final live set.
  DITA_CHECK(service.ForceMerge().ok());
  {
    QueryRequest req;
    req.kind = QueryKind::kJoin;
    req.tau = tau;
    auto served = service.Execute(req);
    DITA_CHECK(served.ok());

    std::vector<Trajectory> live = base.trajectories();
    const auto snap = service.Pin();
    for (const Trajectory& t : *snap->base_data) {
      if (t.id() >= 50000) live.push_back(t);
    }
    DitaEngine batch(cluster, bench::DefaultConfig());
    DITA_CHECK(batch.BuildIndex(Dataset(live)).ok());
    auto oracle = batch.Join(batch, tau);
    DITA_CHECK(oracle.ok());
    auto a = served->pairs;
    auto b = *oracle;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    out.join_matches_oracle = (a == b);
    if (!out.join_matches_oracle) ++wrong;
  }

  std::vector<double> all_lat;
  for (const auto& v : latencies) {
    all_lat.insert(all_lat.end(), v.begin(), v.end());
  }
  out.queries = all_lat.size();
  out.wrong_answers = wrong.load();
  out.qps = double(out.queries) / out.elapsed_s;
  out.p50_ms = PercentileMs(all_lat, 0.50);
  out.p99_ms = PercentileMs(all_lat, 0.99);
  out.inserts = inserts.load();
  out.deletes = deletes.load();
  out.merges = service.merges();
  out.final_epoch = service.epoch();
  out.scheduler_bypasses = service.scheduler().bypasses();
  out.scheduler_shed = service.scheduler().shed();

  const DitaService::ServiceStats stats = service.Stats();
  out.hist_search = QuantilesMs(stats.latency_search);
  out.hist_knn = QuantilesMs(stats.latency_knn);
  out.hist_join = QuantilesMs(stats.latency_join);
  out.hist_queue_wait = QuantilesMs(stats.queue_wait);
  out.shed = stats.shed;
  out.degraded = stats.degraded;
  out.recorded = stats.recorded;
  out.flight_json = service.DumpFlightRecorder();
  return out;
}

/// Observability overhead A/B: an identical closed-loop read workload
/// against a service with the full observability plane on (registry
/// metrics + a large flight recorder) and one with it off (metrics
/// disabled, recorder capacity 0 — the lifecycle stamping itself cannot be
/// turned off and is charged to both sides). Tracing is excluded: its
/// global span mutex is a known serializer and it is a debugging tool, not
/// a production default (DESIGN.md §5h). Acceptance gate: overhead < 3%.
/// Each mode runs twice and keeps its best window to damp scheduler noise.
struct ObsOverheadResult {
  double off_qps = 0.0;
  double on_qps = 0.0;
  double overhead_pct = 0.0;
  size_t wrong_answers = 0;
};

ObsOverheadResult RunObsOverhead(const bench::Args& args) {
  ObsOverheadResult out;
  const size_t base_n = static_cast<size_t>(1200 * args.scale);
  const Dataset base = Region(base_n, 61, 0.0, 1.0);
  const double tau = 0.003;
  const double window_s = args.quick ? 0.15 : 0.3;
  constexpr size_t kProbes = 16;

  struct Mode {
    std::shared_ptr<Cluster> cluster;
    std::unique_ptr<DitaService> service;
    std::vector<const Trajectory*> probes;
    std::vector<std::vector<TrajectoryId>> expect;
  };
  auto make_mode = [&](bool obs_on) -> Mode {
    Mode m;
    DitaConfig config = bench::DefaultConfig();
    config.enable_metrics = obs_on;
    config.serving.flight_recorder_entries = obs_on ? 1024 : 0;
    config.serving.scheduler_threads = 2;
    m.cluster = bench::MakeCluster(args.workers);
    m.service = std::make_unique<DitaService>(m.cluster, config);
    DITA_CHECK(m.service->Start(base).ok());
    m.expect.resize(kProbes);
    for (size_t i = 0; i < kProbes; ++i) {
      m.probes.push_back(&base[(i * 197) % base.size()]);
      QueryRequest req;
      req.kind = QueryKind::kSearch;
      req.query = *m.probes[i];
      req.tau = tau;
      auto r = m.service->Execute(req);
      DITA_CHECK(r.ok());
      m.expect[i] = r->ids;
    }
    return m;
  };
  auto measure = [&](Mode& m, size_t* wrong) -> double {
    size_t done = 0;
    std::mt19937_64 rng(4242);
    WallTimer timer;
    while (timer.Seconds() < window_s) {
      const size_t pi = size_t(rng()) % kProbes;
      QueryRequest req;
      req.kind = QueryKind::kSearch;
      req.query = *m.probes[pi];
      req.tau = tau;
      auto r = m.service->Execute(req);
      ++done;
      if (!r.ok() || r->ids != m.expect[pi]) ++*wrong;
    }
    return double(done) / timer.Seconds();
  };

  // Both services live across the whole measurement; each rep measures the
  // two modes back-to-back (order flipping every rep) and contributes one
  // *paired* overhead sample, so drift that is slow against a rep —
  // allocator state, frequency scaling, a noisy neighbor's burst — hits
  // both sides of the ratio and cancels. The reported numbers are medians
  // over reps: the true per-request delta (a few relaxed atomic bumps plus
  // one seqlock ring write) is far below single-window noise, and a mean
  // or best-of lets one burst-hit window swing the verdict past the gate.
  const int reps = args.quick ? 7 : 15;
  Mode off = make_mode(false);
  Mode on = make_mode(true);
  std::vector<double> off_r, on_r, over_r;
  for (int rep = 0; rep < reps; ++rep) {
    double o, n;
    if (rep % 2 == 0) {
      o = measure(off, &out.wrong_answers);
      n = measure(on, &out.wrong_answers);
    } else {
      n = measure(on, &out.wrong_answers);
      o = measure(off, &out.wrong_answers);
    }
    off_r.push_back(o);
    on_r.push_back(n);
    over_r.push_back(o > 0.0 ? (o - n) / o * 100.0 : 0.0);
  }
  off.service->Stop();
  on.service->Stop();
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  out.off_qps = median(off_r);
  out.on_qps = median(on_r);
  out.overhead_pct = median(over_r);
  return out;
}

std::string HistJson(const char* kind, const HistQuantilesMs& q) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\": {\"count\": %llu, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
                "\"p99_ms\": %.4f, \"p999_ms\": %.4f}",
                kind, static_cast<unsigned long long>(q.count), q.p50, q.p95,
                q.p99, q.p999);
  return buf;
}

void WriteJson(const char* path, const bench::Args& args, const RunResult& r,
               const BatchingResult& b, const CacheResult& c,
               const ObsOverheadResult& o) {
  std::string json = "{\n";
  json += "  \"meta\": " + bench::MetaJson() + ",\n";
  json += "  \"latency_hist\": {" + HistJson("search", r.hist_search) + ", " +
          HistJson("knn", r.hist_knn) + ", " + HistJson("join", r.hist_join) +
          ", " + HistJson("queue_wait", r.hist_queue_wait) + "},\n";
  {
    char sbuf[384];
    std::snprintf(
        sbuf, sizeof(sbuf),
        "  \"service\": {\"shed\": %llu, \"degraded\": %llu, "
        "\"recorded\": %llu},\n"
        "  \"obs_overhead\": {\"off_qps\": %.1f, \"on_qps\": %.1f, "
        "\"overhead_pct\": %.2f, \"wrong_answers\": %zu},\n",
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.degraded),
        static_cast<unsigned long long>(r.recorded), o.off_qps, o.on_qps,
        o.overhead_pct, o.wrong_answers);
    json += sbuf;
  }
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "  \"workload\": {\"scale\": %.2f, \"workers\": %zu, "
      "\"run_seconds\": %.2f},\n"
      "  \"open_loop\": {\"queries\": %zu, \"qps\": %.1f, "
      "\"p50_ms\": %.3f, \"p99_ms\": %.3f},\n"
      "  \"ingest\": {\"inserts\": %zu, \"deletes\": %zu, "
      "\"epoch_merges\": %llu, \"final_epoch\": %llu},\n"
      "  \"bulk_join\": {\"seconds\": %.3f, \"pairs\": %zu, "
      "\"matches_batch_oracle\": %s},\n"
      "  \"scheduler\": {\"bypasses\": %llu, \"shed\": %llu},\n"
      "  \"batching\": {\"off_qps\": %.1f, \"on_qps\": %.1f, "
      "\"gain\": %.2f, \"batches\": %llu, \"avg_batch\": %.2f, "
      "\"wrong_answers\": %zu},\n"
      "  \"cache\": {\"off_qps\": %.1f, \"on_qps\": %.1f, \"gain\": %.2f, "
      "\"hits\": %llu, \"misses\": %llu, \"invalidations\": %llu, "
      "\"wrong_answers\": %zu},\n"
      "  \"wrong_answers\": %zu\n}\n",
      args.scale, args.workers, r.elapsed_s, r.queries, r.qps, r.p50_ms,
      r.p99_ms, r.inserts, r.deletes,
      static_cast<unsigned long long>(r.merges),
      static_cast<unsigned long long>(r.final_epoch), r.join_seconds,
      r.join_pairs, r.join_matches_oracle ? "true" : "false",
      static_cast<unsigned long long>(r.scheduler_bypasses),
      static_cast<unsigned long long>(r.scheduler_shed), b.off_qps, b.on_qps,
      b.gain, static_cast<unsigned long long>(b.batches), b.avg_batch,
      b.wrong_answers, c.off_qps, c.on_qps, c.gain,
      static_cast<unsigned long long>(c.hits),
      static_cast<unsigned long long>(c.misses),
      static_cast<unsigned long long>(c.invalidations), c.wrong_answers,
      r.wrong_answers);
  json += buf;
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// The loaded service's flight recorder, exported next to the bench JSON:
/// `<out>` minus its ".json" suffix plus "_flight.json". The same document
/// DitaService::DumpFlightRecorder serves online; tools/obs_report.py
/// renders it into an SLO report.
void WriteFlightJson(const std::string& bench_path, const RunResult& r) {
  std::string path = bench_path;
  const std::string suffix = ".json";
  if (path.size() > suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    path.resize(path.size() - suffix.size());
  }
  path += "_flight.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(r.flight_json.data(), 1, r.flight_json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace dita

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Serving runtime under open-loop load (scale=%.2f workers=%zu)\n",
              args.scale, args.workers);
  const auto r = dita::Run(args);
  std::printf(
      "queries=%zu qps=%.1f p50=%.3fms p99=%.3fms | inserts=%zu deletes=%zu "
      "merges=%llu epoch=%llu | join=%.3fs pairs=%zu oracle=%s | wrong=%zu\n",
      r.queries, r.qps, r.p50_ms, r.p99_ms, r.inserts, r.deletes,
      static_cast<unsigned long long>(r.merges),
      static_cast<unsigned long long>(r.final_epoch), r.join_seconds,
      r.join_pairs, r.join_matches_oracle ? "yes" : "NO", r.wrong_answers);
  const auto b = dita::RunBatching(args);
  std::printf(
      "batching: off=%.1f qps on=%.1f qps gain=%.2fx | batches=%llu "
      "avg_batch=%.2f wrong=%zu\n",
      b.off_qps, b.on_qps, b.gain,
      static_cast<unsigned long long>(b.batches), b.avg_batch,
      b.wrong_answers);
  const auto c = dita::RunCache(args);
  std::printf(
      "cache:    off=%.1f qps on=%.1f qps gain=%.2fx | hits=%llu misses=%llu "
      "invalidations=%llu wrong=%zu\n",
      c.off_qps, c.on_qps, c.gain, static_cast<unsigned long long>(c.hits),
      static_cast<unsigned long long>(c.misses),
      static_cast<unsigned long long>(c.invalidations), c.wrong_answers);
  const auto o = dita::RunObsOverhead(args);
  std::printf(
      "obs:      off=%.1f qps on=%.1f qps overhead=%.2f%% wrong=%zu\n",
      o.off_qps, o.on_qps, o.overhead_pct, o.wrong_answers);
  std::printf(
      "hist[search]: n=%llu p50=%.3f p95=%.3f p99=%.3f p999=%.3f ms | "
      "hist[knn]: n=%llu p50=%.3f p99=%.3f ms | shed=%llu degraded=%llu\n",
      static_cast<unsigned long long>(r.hist_search.count), r.hist_search.p50,
      r.hist_search.p95, r.hist_search.p99, r.hist_search.p999,
      static_cast<unsigned long long>(r.hist_knn.count), r.hist_knn.p50,
      r.hist_knn.p99, static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.degraded));
  const std::string out_path =
      args.out.empty() ? "BENCH_serving.json" : args.out;
  dita::WriteJson(out_path.c_str(), args, r, b, c, o);
  dita::WriteFlightJson(out_path, r);
  return r.wrong_answers + b.wrong_answers + c.wrong_answers +
                     o.wrong_answers ==
                 0
             ? 0
             : 1;
}
