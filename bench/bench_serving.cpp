// The serving runtime under sustained load: a seeded open-loop arrival
// process (exponential inter-arrivals, mixed search/kNN traffic, a bulk
// self-join riding along at low priority) against a DitaService whose table
// is mutating the whole time — a writer streams far-region inserts/deletes
// fast enough to cross the merge threshold repeatedly, so background epoch
// merges rebuild the base indexes mid-measurement.
//
// Reported per run:
//  * sustained QPS and open-loop p50/p99 wall latency (measured from the
//    *scheduled* arrival instant, so queue wait and coordinated omission
//    are charged to the service, not hidden by a slow issuer);
//  * ingest volume, epoch merges completed, final epoch;
//  * wrong_answers — every point query's result is compared against a
//    batch-engine oracle precomputed on the untouched base region (writers
//    only touch a far-away region, so base answers are version-independent
//    no matter which snapshot a query pins), and a final self-join is
//    compared against a fresh batch engine on the settled live set. The
//    serving runtime's contract is exactness; this must print 0.
//
// Emits BENCH_serving.json next to the other BENCH_*.json files.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serving/service.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset Region(size_t n, uint64_t seed, double lo, double hi) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{lo, lo}, Point{hi, hi});
  cfg.step = 0.01;
  cfg.avg_len = 24;
  cfg.min_len = 6;
  cfg.max_len = 64;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

double PercentileMs(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * double(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct RunResult {
  size_t queries = 0;
  size_t wrong_answers = 0;
  double elapsed_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t inserts = 0;
  size_t deletes = 0;
  uint64_t merges = 0;
  uint64_t final_epoch = 0;
  double join_seconds = 0.0;
  size_t join_pairs = 0;
  bool join_matches_oracle = false;
  uint64_t scheduler_bypasses = 0;
  uint64_t scheduler_shed = 0;
};

/// Micro-batching A/B over the Submit path: the same saturating burst
/// workload of coalescible searches against two otherwise-identical
/// services, one with coalescing disabled (max_batch_size = 1) and one
/// batching up to 16 queued requests per executor drain. Every answer is
/// checked against per-probe ground truth captured via Execute, so the
/// reported gain is for bit-identical results.
struct BatchingResult {
  double off_qps = 0.0;
  double on_qps = 0.0;
  double gain = 0.0;
  uint64_t batches = 0;
  double avg_batch = 0.0;
  size_t wrong_answers = 0;
};

BatchingResult RunBatching(const bench::Args& args) {
  BatchingResult out;
  const size_t base_n = static_cast<size_t>(1200 * args.scale);
  const Dataset base = Region(base_n, 47, 0.0, 1.0);
  const double tau = 0.003;
  const double window_s = args.quick ? 0.3 : 1.5;
  constexpr size_t kProbes = 16;
  constexpr size_t kBurst = 64;

  auto run_mode = [&](size_t max_batch, uint64_t* batches, double* avg_batch,
                      size_t* wrong) -> double {
    DitaConfig config = bench::DefaultConfig();
    config.serving.scheduler_threads = 2;
    config.serving.max_batch_size = max_batch;
    auto cluster = bench::MakeCluster(args.workers);
    DitaService service(cluster, config);
    DITA_CHECK(service.Start(base).ok());

    std::vector<const Trajectory*> probes;
    std::vector<std::vector<TrajectoryId>> expect(kProbes);
    for (size_t i = 0; i < kProbes; ++i) {
      probes.push_back(&base[(i * 193) % base.size()]);
      QueryRequest req;
      req.kind = QueryKind::kSearch;
      req.query = *probes[i];
      req.tau = tau;
      auto r = service.Execute(req);
      DITA_CHECK(r.ok());
      expect[i] = r->ids;
    }

    // Closed-loop saturating bursts: enqueue kBurst compatible searches,
    // then drain. The backlog is what gives the coalescing executor
    // something to batch; the off-mode run pays the same enqueue pattern.
    size_t done = 0;
    std::mt19937_64 rng(1234);
    WallTimer timer;
    while (timer.Seconds() < window_s) {
      std::vector<std::future<Result<QueryResult>>> futs;
      futs.reserve(kBurst);
      std::vector<size_t> pis(kBurst);
      for (size_t i = 0; i < kBurst; ++i) {
        pis[i] = size_t(rng()) % kProbes;
        QueryRequest req;
        req.kind = QueryKind::kSearch;
        req.query = *probes[pis[i]];
        req.tau = tau;
        futs.push_back(service.Submit(std::move(req)));
      }
      for (size_t i = 0; i < kBurst; ++i) {
        auto r = futs[i].get();
        ++done;
        if (!r.ok() || r->ids != expect[pis[i]]) ++*wrong;
      }
    }
    const double qps = double(done) / timer.Seconds();
    *batches = service.coalesced_batches();
    *avg_batch = service.coalesced_batches() > 0
                     ? double(service.coalesced_queries()) /
                           double(service.coalesced_batches())
                     : 0.0;
    service.Stop();
    return qps;
  };

  uint64_t off_batches = 0;
  double off_avg = 0.0;
  out.off_qps = run_mode(1, &off_batches, &off_avg, &out.wrong_answers);
  out.on_qps = run_mode(16, &out.batches, &out.avg_batch, &out.wrong_answers);
  out.gain = out.off_qps > 0.0 ? out.on_qps / out.off_qps : 0.0;
  return out;
}

/// Answer-cache A/B (DESIGN.md §5g): the same skewed repeating read
/// workload — 80% of traffic on 4 hot probes, the rest on a 12-probe warm
/// set — against two otherwise-identical services, one with the answer
/// cache off (the default) and one holding 256 entries. A far-region
/// insert lands every burst, so the on-mode run pays an epoch publish and
/// a full cache invalidation per burst and still has to win. Every answer
/// is compared against ground truth captured before the window (far-region
/// writes cannot change base-region answers), so the gain is for
/// bit-identical results.
struct CacheResult {
  double off_qps = 0.0;
  double on_qps = 0.0;
  double gain = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  size_t wrong_answers = 0;
};

CacheResult RunCache(const bench::Args& args) {
  CacheResult out;
  const size_t base_n = static_cast<size_t>(1200 * args.scale);
  const Dataset base = Region(base_n, 53, 0.0, 1.0);
  const Dataset far = Region(256, 54, 10.0, 11.0);
  const double tau = 0.003;
  const double window_s = args.quick ? 0.3 : 1.5;
  constexpr size_t kProbes = 16;
  constexpr size_t kBurst = 256;

  auto run_mode = [&](size_t cache_entries, uint64_t* hits, uint64_t* misses,
                      uint64_t* invalidations, size_t* wrong) -> double {
    DitaConfig config = bench::DefaultConfig();
    config.serving.scheduler_threads = 2;
    config.serving.answer_cache_entries = cache_entries;
    auto cluster = bench::MakeCluster(args.workers);
    DitaService service(cluster, config);
    DITA_CHECK(service.Start(base).ok());

    std::vector<const Trajectory*> probes;
    std::vector<std::vector<TrajectoryId>> expect(kProbes);
    for (size_t i = 0; i < kProbes; ++i) {
      probes.push_back(&base[(i * 211) % base.size()]);
      QueryRequest req;
      req.kind = QueryKind::kSearch;
      req.query = *probes[i];
      req.tau = tau;
      auto r = service.Execute(req);
      DITA_CHECK(r.ok());
      expect[i] = r->ids;
    }

    size_t done = 0;
    size_t writes = 0;
    std::mt19937_64 rng(5678);
    WallTimer timer;
    while (timer.Seconds() < window_s) {
      // One far-region insert per burst: the epoch bump invalidates the
      // whole cache mid-stream without changing any base-region answer.
      if (writes < far.size()) {
        DITA_CHECK(service
                       .Insert(Trajectory(TrajectoryId(70000 + writes),
                                          far[writes].points()))
                       .ok());
        ++writes;
      }
      for (size_t i = 0; i < kBurst; ++i) {
        const size_t pi = (rng() % 10) < 8 ? rng() % 4 : 4 + rng() % 12;
        QueryRequest req;
        req.kind = QueryKind::kSearch;
        req.query = *probes[pi];
        req.tau = tau;
        auto r = service.Execute(req);
        ++done;
        if (!r.ok() || r->ids != expect[pi]) ++*wrong;
      }
    }
    const double qps = double(done) / timer.Seconds();
    *hits = service.cache_hits();
    *misses = service.cache_misses();
    *invalidations = service.cache_invalidations();
    service.Stop();
    return qps;
  };

  uint64_t off_hits = 0, off_misses = 0, off_inval = 0;
  out.off_qps =
      run_mode(0, &off_hits, &off_misses, &off_inval, &out.wrong_answers);
  out.on_qps = run_mode(256, &out.hits, &out.misses, &out.invalidations,
                        &out.wrong_answers);
  out.gain = out.off_qps > 0.0 ? out.on_qps / out.off_qps : 0.0;
  return out;
}

RunResult Run(const bench::Args& args) {
  RunResult out;
  const size_t base_n = static_cast<size_t>(1200 * args.scale);
  const size_t far_n = static_cast<size_t>(320 * args.scale);
  const Dataset base = Region(base_n, 42, 0.0, 1.0);
  const Dataset far = Region(far_n, 43, 10.0, 11.0);

  DitaConfig config = bench::DefaultConfig();
  config.serving.merge_threshold = 64;  // several epoch merges per run
  config.serving.scheduler_threads = 2;
  auto cluster = bench::MakeCluster(args.workers);
  DitaService service(cluster, config);
  DITA_CHECK(service.Start(base).ok());

  // Oracle answers on the untouched base region (far-region ingest cannot
  // change them, whichever snapshot version a query later pins).
  constexpr size_t kProbes = 24;
  const double tau = 0.003;
  const size_t k = 5;
  std::vector<const Trajectory*> probes;
  std::vector<std::vector<TrajectoryId>> expect_search(kProbes);
  std::vector<std::vector<std::pair<TrajectoryId, double>>> expect_knn(kProbes);
  for (size_t i = 0; i < kProbes; ++i) {
    probes.push_back(&base[(i * 131) % base.size()]);
    QueryRequest sr;
    sr.kind = QueryKind::kSearch;
    sr.query = *probes[i];
    sr.tau = tau;
    auto s = service.Execute(sr);
    DITA_CHECK(s.ok());
    expect_search[i] = s->ids;
    QueryRequest kr;
    kr.kind = QueryKind::kKnnSearch;
    kr.query = *probes[i];
    kr.k = k;
    auto n = service.Execute(kr);
    DITA_CHECK(n.ok());
    expect_knn[i] = n->neighbors;
  }

  // --- The measured window: writer + open-loop query issuers + one bulk
  // low-priority self-join sharing the slot pool.
  using Clock = std::chrono::steady_clock;
  const double run_seconds = args.quick ? 0.6 : 3.0;
  const double target_qps = 150.0 * double(std::max<size_t>(args.queries, 1)) / 50.0;
  const auto t0 = Clock::now();

  std::atomic<size_t> inserts{0}, deletes{0}, wrong{0};
  std::thread writer([&] {
    // Spread the far-region stream across the window; every 4th op (after
    // a warm buffer) retires an older insert so merges see real deletes.
    const double gap_s = run_seconds / double(far.size());
    for (size_t i = 0; i < far.size(); ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration<double>(gap_s * double(i)));
      if (service.Insert(Trajectory(TrajectoryId(50000 + i),
                                    far[i].points()))
              .ok()) {
        ++inserts;
      }
      if (i >= 40 && i % 4 == 0 &&
          service.Delete(TrajectoryId(50000 + i - 40)).ok()) {
        ++deletes;
      }
    }
  });

  std::thread joiner([&] {
    QueryRequest req;
    req.kind = QueryKind::kJoin;
    req.tau = tau;
    req.priority = 2;  // bulk analytics: fair-share keeps searches flowing
    WallTimer timer;
    auto r = service.Execute(req);
    out.join_seconds = timer.Seconds();
    if (r.ok()) out.join_pairs = r->pairs.size();
  });

  // Open-loop arrivals: one seeded exponential schedule, dealt round-robin
  // to a fixed issuer pool; each latency is completion minus *scheduled*
  // arrival.
  constexpr size_t kIssuers = 6;
  std::vector<std::vector<double>> arrivals(kIssuers);
  {
    std::mt19937_64 rng(20260808);
    std::exponential_distribution<double> gap(target_qps);
    double t = 0.0;
    for (size_t i = 0; t < run_seconds; ++i) {
      t += gap(rng);
      arrivals[i % kIssuers].push_back(t);
    }
  }
  std::vector<std::vector<double>> latencies(kIssuers);
  std::vector<std::thread> issuers;
  for (size_t w = 0; w < kIssuers; ++w) {
    issuers.emplace_back([&, w] {
      std::mt19937_64 rng(7700 + w);
      for (size_t i = 0; i < arrivals[w].size(); ++i) {
        const auto due =
            t0 + std::chrono::duration<double>(arrivals[w][i]);
        std::this_thread::sleep_until(due);
        const size_t pi = size_t(rng()) % kProbes;
        const bool knn = (rng() % 5) == 0;  // 20% kNN, 80% search
        QueryRequest req;
        req.query = *probes[pi];
        req.priority = 0;
        if (knn) {
          req.kind = QueryKind::kKnnSearch;
          req.k = k;
        } else {
          req.kind = QueryKind::kSearch;
          req.tau = tau;
        }
        auto r = service.Execute(req);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - due)
                .count();
        if (!r.ok()) {
          ++wrong;
          continue;
        }
        latencies[w].push_back(ms);
        if (knn ? (r->neighbors != expect_knn[pi])
                : (r->ids != expect_search[pi])) {
          ++wrong;
        }
      }
    });
  }
  for (auto& th : issuers) th.join();
  writer.join();
  joiner.join();
  out.elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // --- Settle and run the join oracle on the final live set.
  DITA_CHECK(service.ForceMerge().ok());
  {
    QueryRequest req;
    req.kind = QueryKind::kJoin;
    req.tau = tau;
    auto served = service.Execute(req);
    DITA_CHECK(served.ok());

    std::vector<Trajectory> live = base.trajectories();
    const auto snap = service.Pin();
    for (const Trajectory& t : *snap->base_data) {
      if (t.id() >= 50000) live.push_back(t);
    }
    DitaEngine batch(cluster, bench::DefaultConfig());
    DITA_CHECK(batch.BuildIndex(Dataset(live)).ok());
    auto oracle = batch.Join(batch, tau);
    DITA_CHECK(oracle.ok());
    auto a = served->pairs;
    auto b = *oracle;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    out.join_matches_oracle = (a == b);
    if (!out.join_matches_oracle) ++wrong;
  }

  std::vector<double> all_lat;
  for (const auto& v : latencies) {
    all_lat.insert(all_lat.end(), v.begin(), v.end());
  }
  out.queries = all_lat.size();
  out.wrong_answers = wrong.load();
  out.qps = double(out.queries) / out.elapsed_s;
  out.p50_ms = PercentileMs(all_lat, 0.50);
  out.p99_ms = PercentileMs(all_lat, 0.99);
  out.inserts = inserts.load();
  out.deletes = deletes.load();
  out.merges = service.merges();
  out.final_epoch = service.epoch();
  out.scheduler_bypasses = service.scheduler().bypasses();
  out.scheduler_shed = service.scheduler().shed();
  return out;
}

void WriteJson(const char* path, const bench::Args& args, const RunResult& r,
               const BatchingResult& b, const CacheResult& c) {
  std::string json = "{\n";
  json += "  \"meta\": " + bench::MetaJson() + ",\n";
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "  \"workload\": {\"scale\": %.2f, \"workers\": %zu, "
      "\"run_seconds\": %.2f},\n"
      "  \"open_loop\": {\"queries\": %zu, \"qps\": %.1f, "
      "\"p50_ms\": %.3f, \"p99_ms\": %.3f},\n"
      "  \"ingest\": {\"inserts\": %zu, \"deletes\": %zu, "
      "\"epoch_merges\": %llu, \"final_epoch\": %llu},\n"
      "  \"bulk_join\": {\"seconds\": %.3f, \"pairs\": %zu, "
      "\"matches_batch_oracle\": %s},\n"
      "  \"scheduler\": {\"bypasses\": %llu, \"shed\": %llu},\n"
      "  \"batching\": {\"off_qps\": %.1f, \"on_qps\": %.1f, "
      "\"gain\": %.2f, \"batches\": %llu, \"avg_batch\": %.2f, "
      "\"wrong_answers\": %zu},\n"
      "  \"cache\": {\"off_qps\": %.1f, \"on_qps\": %.1f, \"gain\": %.2f, "
      "\"hits\": %llu, \"misses\": %llu, \"invalidations\": %llu, "
      "\"wrong_answers\": %zu},\n"
      "  \"wrong_answers\": %zu\n}\n",
      args.scale, args.workers, r.elapsed_s, r.queries, r.qps, r.p50_ms,
      r.p99_ms, r.inserts, r.deletes,
      static_cast<unsigned long long>(r.merges),
      static_cast<unsigned long long>(r.final_epoch), r.join_seconds,
      r.join_pairs, r.join_matches_oracle ? "true" : "false",
      static_cast<unsigned long long>(r.scheduler_bypasses),
      static_cast<unsigned long long>(r.scheduler_shed), b.off_qps, b.on_qps,
      b.gain, static_cast<unsigned long long>(b.batches), b.avg_batch,
      b.wrong_answers, c.off_qps, c.on_qps, c.gain,
      static_cast<unsigned long long>(c.hits),
      static_cast<unsigned long long>(c.misses),
      static_cast<unsigned long long>(c.invalidations), c.wrong_answers,
      r.wrong_answers);
  json += buf;
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace dita

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Serving runtime under open-loop load (scale=%.2f workers=%zu)\n",
              args.scale, args.workers);
  const auto r = dita::Run(args);
  std::printf(
      "queries=%zu qps=%.1f p50=%.3fms p99=%.3fms | inserts=%zu deletes=%zu "
      "merges=%llu epoch=%llu | join=%.3fs pairs=%zu oracle=%s | wrong=%zu\n",
      r.queries, r.qps, r.p50_ms, r.p99_ms, r.inserts, r.deletes,
      static_cast<unsigned long long>(r.merges),
      static_cast<unsigned long long>(r.final_epoch), r.join_seconds,
      r.join_pairs, r.join_matches_oracle ? "yes" : "NO", r.wrong_answers);
  const auto b = dita::RunBatching(args);
  std::printf(
      "batching: off=%.1f qps on=%.1f qps gain=%.2fx | batches=%llu "
      "avg_batch=%.2f wrong=%zu\n",
      b.off_qps, b.on_qps, b.gain,
      static_cast<unsigned long long>(b.batches), b.avg_batch,
      b.wrong_answers);
  const auto c = dita::RunCache(args);
  std::printf(
      "cache:    off=%.1f qps on=%.1f qps gain=%.2fx | hits=%llu misses=%llu "
      "invalidations=%llu wrong=%zu\n",
      c.off_qps, c.on_qps, c.gain, static_cast<unsigned long long>(c.hits),
      static_cast<unsigned long long>(c.misses),
      static_cast<unsigned long long>(c.invalidations), c.wrong_answers);
  dita::WriteJson(args.out.empty() ? "BENCH_serving.json" : args.out.c_str(),
                  args, r, b, c);
  return r.wrong_answers + b.wrong_answers + c.wrong_answers == 0 ? 0 : 1;
}
