// Figure 11: large worldwide OSM(-like) datasets.
// (a) search time, DTW, all engines; (b) join time, DTW, DITA only (the
// paper's baselines cannot finish); (c) search time, Frechet; (d) join time,
// Frechet, DITA only. Search in cost-model ms, join in cost-model seconds.

#include "bench/search_figure.h"

namespace dita::bench {
namespace {

void RunPanels(const Args& args) {
  const Dataset search_set = GenerateOsmLike(args.scale, 44);
  // OSM(join) is a smaller sample of OSM(search), as in the paper (§7.1).
  auto join_result = search_set.Sample(0.5, 3);
  DITA_CHECK(join_result.ok());
  const Dataset join_set = std::move(*join_result);
  const auto queries = search_set.SampleQueries(args.queries, 1001);
  const auto taus = PaperTaus();
  std::vector<std::string> cols;
  for (double tau : taus) cols.push_back(StrFormat("%.3f", tau));

  // OSM parameters per the paper's Table 3 scaled down: K = 5, larger N_G,
  // and a coarser verification cell size — long worldwide trajectories have
  // many cells, and D must grow with trajectory extent for the cell filter
  // to stay cheaper than the early-abandoning DP it guards.
  DitaConfig osm_config = DefaultConfig();
  osm_config.build.ng = 6;
  osm_config.build.trie.num_pivots = 5;
  osm_config.build.trie.align_fanout = 16;
  osm_config.build.trie.pivot_fanout = 8;
  osm_config.build.trie.leaf_capacity = 16;
  osm_config.verify.cell_size = 0.02;
  // Long worldwide trajectories have many cells; the quadratic cell bound
  // costs more than the early-abandoning DP it would save here.
  osm_config.verify.enable_cell = false;

  for (DistanceType distance : {DistanceType::kDTW, DistanceType::kFrechet}) {
    const char* dname = DistanceTypeName(distance);
    {
      PrintHeader(StrFormat("search on OSM (%s), ms", dname), cols);
      SearchEngines e =
          BuildSearchEngines(search_set, args.workers, distance, osm_config);
      std::map<std::string, std::vector<double>> cand_rows;
      for (auto& [name, fn] : e.Fns()) {
        std::vector<double> row;
        for (double tau : taus) {
          double ms = 0, cands = 0;
          for (const auto& q : queries) {
            DitaEngine::QueryStats stats;
            auto r = fn(q, tau, &stats);
            DITA_CHECK(r.ok());
            ms += stats.makespan_seconds * 1e3;
            cands += double(stats.candidates);
          }
          row.push_back(ms / double(queries.size()));
          cand_rows[name].push_back(cands / double(queries.size()));
        }
        PrintRow(name, row);
      }
      PrintHeader(StrFormat("candidates per query on OSM (%s)", dname), cols);
      for (const char* name : {"Naive", "Simba", "DFT", "DITA"}) {
        PrintRow(name, cand_rows[name], "%12.1f");
      }
    }
    {
      PrintHeader(StrFormat("join on OSM(join) (%s), seconds — DITA only",
                            dname),
                  cols);
      std::vector<double> row;
      for (double tau : taus) {
        auto cluster = MakeCluster(args.workers);
        DitaConfig config = osm_config;
        config.distance = distance;
        DitaEngine engine(cluster, config);
        DITA_CHECK(engine.BuildIndex(join_set).ok());
        DitaEngine::JoinStats stats;
        DITA_CHECK(engine.Join(engine, tau, &stats).ok());
        row.push_back(stats.makespan_seconds);
      }
      PrintRow("DITA", row, "%12.4f");
    }
  }
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  if (args.queries == 50) args.queries = 20;  // long trajectories; fewer queries
  std::printf("Figure 11 reproduction: OSM-like search and join (DTW, Frechet)\n");
  std::printf("scale=%.2f queries=%zu workers=%zu\n", args.scale, args.queries,
              args.workers);
  dita::bench::RunPanels(args);
  return 0;
}
