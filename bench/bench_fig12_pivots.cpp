// Figure 12: pivot selection ablations (Appendix B).
// (a)-(b) pivot selection strategy (Inflection / Neighbor / First-Last),
// join seconds vs tau on Beijing- and Chengdu-like data;
// (c)-(d) pivot size K sweep, join seconds vs tau.

#include "bench/bench_common.h"
#include "index/pivot.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {
namespace {

double JoinSeconds(const Dataset& data, size_t workers, double tau,
                   const DitaConfig& config) {
  auto cluster = MakeCluster(workers);
  DitaEngine engine(cluster, config);
  DITA_CHECK(engine.BuildIndex(data).ok());
  DitaEngine::JoinStats stats;
  DITA_CHECK(engine.Join(engine, tau, &stats).ok());
  return stats.makespan_seconds;
}

void Run(const Args& args) {
  const auto taus = PaperTaus();
  std::vector<std::string> cols;
  for (double tau : taus) cols.push_back(StrFormat("%.3f", tau));

  struct Panel {
    const char* name;
    Dataset data;
  };
  std::vector<Panel> panels;
  panels.push_back({"Beijing", GenerateBeijingLike(args.scale, 42)});
  panels.push_back({"Chengdu", GenerateChengduLike(args.scale, 43)});

  for (const auto& panel : panels) {
    PrintHeader(
        StrFormat("pivot selection strategy on %s, join seconds", panel.name),
        cols);
    for (PivotStrategy strategy :
         {PivotStrategy::kInflectionPoint, PivotStrategy::kNeighborDistance,
          PivotStrategy::kFirstLastDistance}) {
      DitaConfig config = DefaultConfig();
      config.build.trie.strategy = strategy;
      std::vector<double> row;
      for (double tau : taus) {
        row.push_back(JoinSeconds(panel.data, args.workers, tau, config));
      }
      PrintRow(PivotStrategyName(strategy), row, "%12.4f");
    }
  }

  for (const auto& panel : panels) {
    PrintHeader(StrFormat("pivot size K on %s, join seconds", panel.name), cols);
    for (size_t k : {2u, 3u, 4u, 5u, 6u}) {
      DitaConfig config = DefaultConfig();
      config.build.trie.num_pivots = k;
      std::vector<double> row;
      for (double tau : taus) {
        row.push_back(JoinSeconds(panel.data, args.workers, tau, config));
      }
      PrintRow(StrFormat("K=%zu", k), row, "%12.4f");
    }
  }
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Figure 12 reproduction: pivot strategy and pivot size (DTW)\n");
  std::printf("scale=%.2f workers=%zu\n", args.scale, args.workers);
  dita::bench::Run(args);
  return 0;
}
