// Figure 10: trajectory similarity join on Chengdu(-like) data with DTW.
// Panels (a)-(d); series Simba / DITA; values in cost-model seconds.

#include "bench/join_figure.h"

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Figure 10 reproduction: join on Chengdu-like data (DTW)\n");
  std::printf("scale=%.2f workers=%zu\n", args.scale, args.workers);
  dita::Dataset full = dita::GenerateChengduLike(args.scale * 2.0, 43);
  dita::bench::RunJoinFigure(args, full, "Chengdu");
  return 0;
}
