// Table 5 (Appendix B): index construction time and global/local index sizes
// while varying the dataset sample rate, for DITA on Beijing- and
// Chengdu-like data, plus the DFT comparison rows at full size. Reproduced
// observations: build time and local size grow ~linearly with data; global
// size depends only on the partition count; DFT's segment index dwarfs
// DITA's local index.

#include "baselines/dft.h"
#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dita::bench {
namespace {

void Run(const Args& args) {
  struct Panel {
    const char* name;
    Dataset data;
  };
  std::vector<Panel> panels;
  panels.push_back({"Beijing", GenerateBeijingLike(args.scale, 42)});
  panels.push_back({"Chengdu", GenerateChengduLike(args.scale, 43)});

  PrintHeader("Table 5: indexing time and size",
              {"time_s", "global_KB", "local_KB"});
  for (const auto& panel : panels) {
    for (double rate : {0.25, 0.5, 0.75, 1.0}) {
      auto sampled = panel.data.Sample(rate, 7);
      DITA_CHECK(sampled.ok());
      auto cluster = MakeCluster(args.workers);
      DitaEngine engine(cluster, DefaultConfig());
      DITA_CHECK(engine.BuildIndex(*sampled).ok());
      const auto& s = engine.index_stats();
      PrintRow(StrFormat("DITA(%s) %.2f", panel.name, rate),
               {s.build_seconds, double(s.global_index_bytes) / 1024.0,
                double(s.local_index_bytes) / 1024.0},
               "%12.3f");
    }
  }
  for (const auto& panel : panels) {
    auto cluster = MakeCluster(args.workers);
    DftEngine dft(cluster, DistanceType::kDTW);
    WallTimer timer;
    DITA_CHECK(dft.BuildIndex(panel.data).ok());
    PrintRow(StrFormat("DFT(%s) 1.00", panel.name),
             {timer.Seconds(), 0.0, double(dft.index_bytes()) / 1024.0},
             "%12.3f");
  }
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Table 5 reproduction: indexing time and size\n");
  std::printf("scale=%.2f workers=%zu\n", args.scale, args.workers);
  dita::bench::Run(args);
  return 0;
}
