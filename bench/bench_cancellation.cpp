// Cancellation responsiveness and token-check overhead, the two numbers the
// cooperative-cancellation design trades against each other:
//
//  * time-to-stop: how much work runs *after* a stop is requested. A second
//    thread calls Cancel() at a random instant while the workload loops;
//    `ops_observed() - ops_at_stop()` is the work charged between the cancel
//    and the loop observing it, in the charge points' own units (trie node
//    visits; DP rows). Reported as p50/p99 over repeated trials. The bound
//    is the checkpoint stride: 256 node visits in the trie traversal, 32
//    rows in the DP kernels, plus whatever one stride batch spans.
//
//  * token-check overhead: throughput of the two hottest instrumented loops
//    (trie CollectCandidates, DtwWithin) with a never-stopping context
//    attached versus no context, interleaved and min-of-15 so frequency
//    drift does not masquerade as overhead. The strides above were chosen
//    to keep this under 2%.
//
// Emits BENCH_cancellation.json next to the other BENCH_*.json files.

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "distance/dp_scratch.h"
#include "distance/kernels.h"
#include "index/trie_index.h"
#include "util/query_context.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset BenchDataset(size_t n, uint64_t seed = 71) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.avg_len = 40;
  cfg.min_len = 8;
  cfg.max_len = 160;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

TrieIndex::Options BenchTrieOptions() {
  TrieIndex::Options opts;
  opts.num_pivots = 4;
  opts.align_fanout = 8;
  opts.pivot_fanout = 4;
  opts.leaf_capacity = 4;
  return opts;
}

/// Times `fn` until ~`window_s` of wall clock has elapsed; ns per call.
template <typename Fn>
double NsPerCall(Fn&& fn, double window_s = 0.1) {
  fn();  // warm-up
  size_t done = 0;
  WallTimer timer;
  do {
    fn();
    ++done;
  } while (timer.Seconds() < window_s);
  return timer.Seconds() * 1e9 / static_cast<double>(done);
}

/// Interleaves `a` and `b` measurements and returns {min_a, min_b}. The
/// minimum over many short interleaved windows is the robust estimator
/// here: interference and frequency drift only ever slow a window down, so
/// the per-side minima compare the two loops at the machine's best, and a
/// one-shot comparison's ±3-5% drift noise drops below the ~2% effect being
/// measured.
template <typename FnA, typename FnB>
std::pair<double, double> MinPairNs(FnA&& a, FnB&& b) {
  constexpr int kReps = 15;
  double na = 1e300, nb = 1e300;
  for (int i = 0; i < kReps; ++i) {
    na = std::min(na, NsPerCall(a));
    nb = std::min(nb, NsPerCall(b));
  }
  return {na, nb};
}

uint64_t Percentile(std::vector<uint64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * double(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

// Keeps results alive without google-benchmark's DoNotOptimize.
volatile uint64_t g_sink = 0;

/// Runs `body` in a loop on a worker thread until a randomly-timed Cancel()
/// lands; returns the per-trial overshoot (ops charged after the cancel).
template <typename Body>
std::vector<uint64_t> AsyncCancelOvershoot(int trials, std::mt19937& rng,
                                           Body&& body) {
  std::uniform_int_distribution<int> delay_us(20, 2000);
  std::vector<uint64_t> overshoot;
  for (int t = 0; t < trials; ++t) {
    QueryContext ctx;
    std::thread worker([&] {
      while (!ctx.stopped()) body(ctx);
    });
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us(rng)));
    ctx.Cancel();
    worker.join();
    overshoot.push_back(ctx.ops_observed() - ctx.ops_at_stop());
  }
  return overshoot;
}

std::string OvershootJson(const char* key, const std::vector<uint64_t>& v) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"p50\": %llu, \"p99\": %llu, \"trials\": %zu},\n",
                key, static_cast<unsigned long long>(Percentile(v, 0.50)),
                static_cast<unsigned long long>(Percentile(v, 0.99)),
                v.size());
  return buf;
}

void WriteCancellationJson(const char* path) {
  std::string json = "{\n";
  json += "  \"meta\": " + bench::MetaJson() + ",\n";
  char buf[200];
  std::mt19937 rng(20260808);

  Dataset ds = BenchDataset(4096);
  TrieIndex trie;
  if (!trie.Build(ds.trajectories(), BenchTrieOptions()).ok()) {
    std::fprintf(stderr, "trie build failed\n");
    return;
  }
  const size_t num_queries = 64;
  std::vector<const Trajectory*> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(&ds[(i * 61) % ds.size()]);
  }
  auto collect_batch = [&](QueryContext* ctx, double tau,
                           std::vector<uint32_t>& out) {
    for (const Trajectory* q : queries) {
      if (ctx != nullptr && ctx->stopped()) break;
      TrieIndex::SearchSpec spec;
      spec.query = q;
      spec.tau = tau;
      spec.mode = PruneMode::kAccumulate;
      spec.ctx = ctx;
      out.clear();
      trie.CollectCandidates(spec, &out);
      g_sink += out.size();
    }
  };

  // --- Time-to-stop in the trie traversal, on a deliberately heavy tau:
  // selective queries finish within a stride anyway, so responsiveness only
  // matters when traversals are long. Overshoot p50 is usually 0 — cancels
  // that land in the per-query setup (suffix MBRs, stack reset) cost no
  // visits at all — and the tail is bounded by the checkpoint stride.
  {
    const double tau = 0.2;
    std::vector<uint32_t> out;
    const std::vector<uint64_t> overshoot = AsyncCancelOvershoot(
        128, rng, [&](QueryContext& ctx) { collect_batch(&ctx, tau, out); });
    json += OvershootJson("time_to_stop_trie_node_visits", overshoot);
    std::printf("time-to-stop   trie (tau=%.2f) p50=%llu p99=%llu node "
                "visits (%zu trials)\n",
                tau,
                static_cast<unsigned long long>(Percentile(overshoot, 0.50)),
                static_cast<unsigned long long>(Percentile(overshoot, 0.99)),
                overshoot.size());
  }

  // --- Time-to-stop in the DP kernel: DtwWithin polls the scratch-attached
  // context every 32 rows, so overshoot is bounded by the poll stride times
  // the columns one poll batch spans.
  {
    const std::vector<uint64_t> overshoot =
        AsyncCancelOvershoot(128, rng, [&](QueryContext& ctx) {
          // Scratch is thread-local to the worker: extract inside the body.
          static thread_local DpScratch scratch;
          scratch.SetQueryContext(&ctx);
          const TrajView va = scratch.ExtractA(ds[1]);
          const TrajView vb = scratch.ExtractB(ds[8]);
          for (int i = 0; i < 64 && !ctx.stopped(); ++i) {
            g_sink += kernels::DtwWithin(va, vb, 1e9, scratch) ? 1 : 0;
          }
          scratch.SetQueryContext(nullptr);
        });
    json += OvershootJson("time_to_stop_dp_rows", overshoot);
    std::printf("time-to-stop   dp kernel p50=%llu p99=%llu rows "
                "(%zu trials)\n",
                static_cast<unsigned long long>(Percentile(overshoot, 0.50)),
                static_cast<unsigned long long>(Percentile(overshoot, 0.99)),
                overshoot.size());
  }

  // --- Token-check overhead: never-stopping context vs no context. ---
  {
    std::vector<uint32_t> out;
    QueryContext ctx;  // no budgets, no deadlines: every check is a no-op
    const auto [off_batch_ns, on_batch_ns] =
        MinPairNs([&] { collect_batch(nullptr, 0.01, out); },
                     [&] { collect_batch(&ctx, 0.01, out); });
    const double off_ns = off_batch_ns / static_cast<double>(num_queries);
    const double on_ns = on_batch_ns / static_cast<double>(num_queries);
    const double overhead_pct = (on_ns / off_ns - 1.0) * 100.0;
    std::snprintf(buf, sizeof(buf),
                  "  \"trie_collect_queries_per_sec\": "
                  "{\"ctx_off\": %.0f, \"ctx_on\": %.0f, "
                  "\"overhead_pct\": %.2f},\n",
                  1e9 / off_ns, 1e9 / on_ns, overhead_pct);
    json += buf;
    std::printf("trie collect   ctx off %.0f q/s, ctx on %.0f q/s "
                "(%.2f%% overhead)\n",
                1e9 / off_ns, 1e9 / on_ns, overhead_pct);
  }
  {
    DpScratch scratch;
    const TrajView va = scratch.ExtractA(ds[1]);
    const TrajView vb = scratch.ExtractB(ds[8]);
    QueryContext ctx;
    const auto [off_ns, on_ns] = MinPairNs(
        [&] {
          scratch.SetQueryContext(nullptr);
          g_sink += kernels::DtwWithin(va, vb, 1e9, scratch) ? 1 : 0;
        },
        [&] {
          scratch.SetQueryContext(&ctx);
          g_sink += kernels::DtwWithin(va, vb, 1e9, scratch) ? 1 : 0;
        });
    scratch.SetQueryContext(nullptr);
    const double overhead_pct = (on_ns / off_ns - 1.0) * 100.0;
    std::snprintf(buf, sizeof(buf),
                  "  \"dtw_within_calls_per_sec\": "
                  "{\"ctx_off\": %.0f, \"ctx_on\": %.0f, "
                  "\"overhead_pct\": %.2f}\n",
                  1e9 / off_ns, 1e9 / on_ns, overhead_pct);
    json += buf;
    std::printf("dtw within     ctx off %.0f c/s, ctx on %.0f c/s "
                "(%.2f%% overhead)\n",
                1e9 / off_ns, 1e9 / on_ns, overhead_pct);
  }
  json += "}\n";

  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace dita

int main() {
  dita::WriteCancellationJson("BENCH_cancellation.json");
  return 0;
}
