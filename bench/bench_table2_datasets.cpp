// Tables 2 and 6: dataset statistics. Prints the same columns as the paper
// (cardinality, average / min / max trajectory length, raw size) for the
// synthetic Beijing-, Chengdu-, OSM(search)-, OSM(join)- and Chengdu(tiny)-
// like datasets used throughout the benchmark harness.

#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {
namespace {

void PrintStats(const char* name, const Dataset& ds) {
  const auto s = ds.ComputeStats();
  std::printf("%-16s %12zu %10.1f %8zu %8zu %12s\n", name, s.cardinality,
              s.avg_len, s.min_len, s.max_len,
              HumanBytes(double(s.bytes)).c_str());
}

void Run(const Args& args) {
  std::printf("%-16s %12s %10s %8s %8s %12s\n", "dataset", "cardinality",
              "avg_len", "min_len", "max_len", "size");
  PrintStats("Beijing", GenerateBeijingLike(args.scale, 42));
  PrintStats("Chengdu", GenerateChengduLike(args.scale, 43));
  const Dataset osm = GenerateOsmLike(args.scale, 44);
  PrintStats("OSM(search)", osm);
  auto osm_join = osm.Sample(0.5, 3);
  DITA_CHECK(osm_join.ok());
  PrintStats("OSM(join)", *osm_join);

  GeneratorConfig tiny;
  tiny.cardinality = static_cast<size_t>(6000 * args.scale);
  tiny.seed = 61;
  tiny.region = MBR(Point{103.9, 30.5}, Point{104.3, 30.9});
  tiny.avg_len = 38.0;
  tiny.min_len = 6;
  tiny.max_len = 205;
  PrintStats("Chengdu(tiny)", GenerateTaxiDataset(tiny));
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Tables 2 and 6 reproduction: dataset statistics (scale=%.2f)\n",
              args.scale);
  dita::bench::Run(args);
  return 0;
}
