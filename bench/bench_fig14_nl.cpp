// Figure 14 (Appendix B "Varying N_L"): local-index fanout sweep, join
// seconds vs tau, on Beijing- and Chengdu-like data. The paper sweeps
// {16, 32, 64} at 10M+ trajectories; partitions here are smaller, so the
// equivalent knee sits at smaller fanouts — we sweep both ranges and the
// U-shape (too little separation vs too many nodes) is the reproduced
// observation.

#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {
namespace {

void Run(const Args& args) {
  const auto taus = PaperTaus();
  std::vector<std::string> cols;
  for (double tau : taus) cols.push_back(StrFormat("%.3f", tau));

  struct Panel {
    const char* name;
    Dataset data;
  };
  std::vector<Panel> panels;
  panels.push_back({"Beijing", GenerateBeijingLike(args.scale, 42)});
  panels.push_back({"Chengdu", GenerateChengduLike(args.scale, 43)});

  for (const auto& panel : panels) {
    PrintHeader(StrFormat("varying N_L on %s, join seconds", panel.name), cols);
    for (size_t nl : {4u, 8u, 16u, 32u, 64u}) {
      DitaConfig config = DefaultConfig();
      config.build.trie.align_fanout = nl;
      config.build.trie.pivot_fanout = std::max<size_t>(2, nl / 2);
      std::vector<double> row;
      for (double tau : taus) {
        auto cluster = MakeCluster(args.workers);
        DitaEngine engine(cluster, config);
        DITA_CHECK(engine.BuildIndex(panel.data).ok());
        DitaEngine::JoinStats stats;
        DITA_CHECK(engine.Join(engine, tau, &stats).ok());
        row.push_back(stats.makespan_seconds);
      }
      PrintRow(StrFormat("N_L=%zu", nl), row, "%12.4f");
    }
  }
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Figure 14 reproduction: local index fanout N_L (DTW)\n");
  std::printf("scale=%.2f workers=%zu\n", args.scale, args.workers);
  dita::bench::Run(args);
  return 0;
}
