#ifndef DITA_BENCH_JOIN_FIGURE_H_
#define DITA_BENCH_JOIN_FIGURE_H_

// Shared driver for the Figure 9 / Figure 10 join comparisons: four panels
// (vary tau, scalability, scale-up, scale-out), Simba vs DITA self-joins,
// values in cost-model seconds (the paper's unit).

#include <map>

#include "baselines/simba.h"
#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {

inline double SimbaJoinSeconds(const Dataset& data, size_t workers, double tau) {
  auto cluster = MakeCluster(workers);
  SimbaEngine simba(cluster, DistanceType::kDTW);
  DITA_CHECK(simba.BuildIndex(data).ok());
  DitaEngine::JoinStats stats;
  auto r = simba.SelfJoin(tau, &stats);
  DITA_CHECK(r.ok());
  return stats.makespan_seconds;
}

inline double DitaJoinSeconds(const Dataset& data, size_t workers, double tau,
                              DitaEngine::JoinStats* stats_out = nullptr) {
  auto cluster = MakeCluster(workers);
  DitaEngine engine(cluster, DefaultConfig());
  DITA_CHECK(engine.BuildIndex(data).ok());
  DitaEngine::JoinStats stats;
  auto r = engine.Join(engine, tau, &stats);
  DITA_CHECK(r.ok());
  if (stats_out != nullptr) *stats_out = stats;
  return stats.makespan_seconds;
}

inline void RunJoinFigure(const Args& args, const Dataset& full,
                          const char* dataset_name) {
  const auto taus = PaperTaus();
  const double default_tau = 0.003;

  // (a) varying tau.
  {
    std::vector<std::string> cols;
    for (double tau : taus) cols.push_back(StrFormat("%.3f", tau));
    PrintHeader(StrFormat("(a) vary tau on %s, join seconds", dataset_name),
                cols);
    std::vector<double> simba_row, dita_row;
    for (double tau : taus) {
      simba_row.push_back(SimbaJoinSeconds(full, args.workers, tau));
      dita_row.push_back(DitaJoinSeconds(full, args.workers, tau));
    }
    PrintRow("Simba", simba_row, "%12.4f");
    PrintRow("DITA", dita_row, "%12.4f");
  }

  // (b) scalability over sample rate.
  {
    const std::vector<double> rates = {0.25, 0.5, 0.75, 1.0};
    std::vector<std::string> cols;
    for (double r : rates) cols.push_back(StrFormat("%.2f", r));
    PrintHeader(StrFormat("(b) scalability on %s (tau=%.3f), join seconds",
                          dataset_name, default_tau),
                cols);
    std::vector<double> simba_row, dita_row;
    for (double rate : rates) {
      auto sampled = full.Sample(rate, 7);
      DITA_CHECK(sampled.ok());
      simba_row.push_back(SimbaJoinSeconds(*sampled, args.workers, default_tau));
      dita_row.push_back(DitaJoinSeconds(*sampled, args.workers, default_tau));
    }
    PrintRow("Simba", simba_row, "%12.4f");
    PrintRow("DITA", dita_row, "%12.4f");
  }

  // (c) scale-up over cores.
  {
    const std::vector<size_t> cores = {4, 8, 12, 16};
    std::vector<std::string> cols;
    for (size_t c : cores) cols.push_back(StrFormat("%zuc", c));
    PrintHeader(StrFormat("(c) scale-up on %s (tau=%.3f), join seconds",
                          dataset_name, default_tau),
                cols);
    std::vector<double> simba_row, dita_row;
    for (size_t c : cores) {
      simba_row.push_back(SimbaJoinSeconds(full, c, default_tau));
      dita_row.push_back(DitaJoinSeconds(full, c, default_tau));
    }
    PrintRow("Simba", simba_row, "%12.4f");
    PrintRow("DITA", dita_row, "%12.4f");
  }

  // (d) scale-out.
  {
    const std::vector<std::pair<double, size_t>> scales = {
        {0.25, 4}, {0.5, 8}, {0.75, 12}, {1.0, 16}};
    std::vector<std::string> cols;
    for (auto& [r, c] : scales) cols.push_back(StrFormat("%.2f,%zuc", r, c));
    PrintHeader(StrFormat("(d) scale-out on %s (tau=%.3f), join seconds",
                          dataset_name, default_tau),
                cols);
    std::vector<double> simba_row, dita_row;
    for (auto& [rate, c] : scales) {
      auto sampled = full.Sample(rate, 7);
      DITA_CHECK(sampled.ok());
      simba_row.push_back(SimbaJoinSeconds(*sampled, c, default_tau));
      dita_row.push_back(DitaJoinSeconds(*sampled, c, default_tau));
    }
    PrintRow("Simba", simba_row, "%12.4f");
    PrintRow("DITA", dita_row, "%12.4f");
  }
}

}  // namespace dita::bench

#endif  // DITA_BENCH_JOIN_FIGURE_H_
