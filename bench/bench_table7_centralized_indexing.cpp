// Table 7 (Appendix C): centralized index build time and size for DITA, MBE
// and VP-tree on the Chengdu(tiny)-like dataset. Reproduced observation:
// the VP-tree's O(n log n) *distance computations* during construction make
// it far slower to build than DITA's coordinate-only trie; MBE sits between.

#include "baselines/centralized_dita.h"
#include "baselines/mbe.h"
#include "baselines/vptree.h"
#include "bench/bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dita::bench {
namespace {

void Run(const Args& args) {
  GeneratorConfig cfg;
  cfg.cardinality = static_cast<size_t>(6000 * args.scale);
  cfg.seed = 61;
  cfg.region = MBR(Point{103.9, 30.5}, Point{104.3, 30.9});
  cfg.avg_len = 38.0;
  cfg.min_len = 6;
  cfg.max_len = 205;
  const Dataset data = GenerateTaxiDataset(cfg);
  std::printf("dataset: %zu trajectories, %zu points\n", data.size(),
              data.TotalPoints());

  PrintHeader("Table 7: centralized index build", {"time_s", "size_MB"});

  CentralizedDita dita;
  DITA_CHECK(dita.Build(data, DefaultConfig()).ok());
  PrintRow("DITA", {dita.build_seconds(),
                    double(dita.ByteSize()) / (1024.0 * 1024.0)},
           "%12.3f");

  MbeIndex mbe;
  DITA_CHECK(mbe.Build(data, DistanceType::kFrechet).ok());
  PrintRow("MBE", {mbe.build_seconds(),
                   double(mbe.ByteSize()) / (1024.0 * 1024.0)},
           "%12.3f");

  VpTree vptree;
  DITA_CHECK(vptree.Build(data, DistanceType::kFrechet).ok());
  PrintRow("VP-Tree", {vptree.build_seconds(),
                       double(vptree.ByteSize()) / (1024.0 * 1024.0)},
           "%12.3f");
}

}  // namespace
}  // namespace dita::bench

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Table 7 reproduction: centralized indexing\n");
  std::printf("scale=%.2f\n", args.scale);
  dita::bench::Run(args);
  return 0;
}
