#ifndef DITA_BENCH_BENCH_COMMON_H_
#define DITA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "core/engine.h"
#include "obs/export.h"
#include "workload/generator.h"

// Provenance injected by bench/CMakeLists.txt at configure time; the
// fallbacks keep the header usable from targets that skip the stamping.
#ifndef DITA_GIT_SHA
#define DITA_GIT_SHA "unknown"
#endif
#ifndef DITA_BUILD_TYPE
#define DITA_BUILD_TYPE "unspecified"
#endif
#ifndef DITA_SANITIZE_STAMP
#define DITA_SANITIZE_STAMP "none"
#endif
#ifndef DITA_NATIVE_STAMP
#define DITA_NATIVE_STAMP "off"
#endif

namespace dita::bench {

/// UTC wall-clock "now" in ISO-8601 (e.g. "2026-02-14T09:31:07Z"). The one
/// deliberately nondeterministic field in a bench JSON — provenance of WHEN
/// the numbers were taken; schema checks assert presence/shape only.
inline std::string IsoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

/// Provenance stamp embedded in every BENCH_*.json file: which commit and
/// build flavour produced the numbers (including sanitizer / -march=native
/// stamps, so a sanitized run can never be mistaken for a perf baseline),
/// when, and how many hardware threads the machine had. Emitted as one JSON
/// object (no trailing newline) so callers can splice it in as
/// `"meta": <this>`.
inline std::string MetaJson() {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("git_sha");
  w.String(DITA_GIT_SHA);
  w.Key("build_type");
  w.String(DITA_BUILD_TYPE);
  w.Key("sanitize");
  w.String(DITA_SANITIZE_STAMP);
  w.Key("native");
  w.String(DITA_NATIVE_STAMP);
  w.Key("timestamp_utc");
  w.String(IsoTimestampUtc());
  w.Key("hardware_threads");
  w.UInt(std::thread::hardware_concurrency());
  w.EndObject();
  return w.Take();
}

/// Common command-line knobs for the experiment harnesses.
///
///   --scale=<float>    dataset scale multiplier (default 1.0 = the bench's
///                      default size, far below the paper's but same shapes)
///   --queries=<int>    queries per measurement point (default 50)
///   --workers=<int>    default simulated worker count (default 16)
///   --quick            smoke mode: shrink measurement windows / loads so the
///                      bench finishes in seconds (numbers are noisy but the
///                      JSON schema is complete — ci.sh bench-smoke gates on
///                      shape, not precision)
///   --out=<path>       where to write the bench's BENCH_*.json (default:
///                      the bench's usual name in the working directory)
struct Args {
  double scale = 1.0;
  size_t queries = 50;
  size_t workers = 16;
  bool quick = false;
  std::string out;
};

inline Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      args.queries = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      args.workers = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      args.out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

inline std::shared_ptr<Cluster> MakeCluster(size_t workers) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  return std::make_shared<Cluster>(cfg);
}

/// The paper's default thresholds (Table 3): 0.001 is roughly 111 meters.
inline std::vector<double> PaperTaus() {
  return {0.001, 0.002, 0.003, 0.004, 0.005};
}

/// Default DITA configuration at bench scale. The paper's N_G = 64 / N_L =
/// 32 / leaf 16 target 10M+ trajectories; these are the equivalent knee
/// values at this repository's dataset sizes (partitions must stay large
/// enough for the pivot levels of the trie to engage).
inline DitaConfig DefaultConfig() {
  DitaConfig config;
  config.build.ng = 4;
  config.build.trie.num_pivots = 4;
  config.build.trie.align_fanout = 8;
  config.build.trie.pivot_fanout = 4;
  config.build.trie.leaf_capacity = 4;
  config.verify.cell_size = 0.005;
  // bench_ablation_verification shows the quadratic cell bound never pays
  // at these dataset sizes: the double-direction DP rejects negatives in
  // O(rows-to-divergence) already. The engine default keeps the paper's
  // full pipeline; the harness measures the configuration that is actually
  // fastest here.
  config.verify.enable_cell = false;
  return config;
}

/// A search engine adapter so one measurement loop covers DITA and every
/// baseline.
using SearchFn = std::function<Result<std::vector<TrajectoryId>>(
    const Trajectory&, double, DitaEngine::QueryStats*)>;

/// Average per-query cost-model latency (milliseconds) over `queries`.
inline double AvgSearchMs(const SearchFn& search,
                          const std::vector<Trajectory>& queries, double tau) {
  double total_ms = 0.0;
  size_t counted = 0;
  for (const auto& q : queries) {
    DitaEngine::QueryStats stats;
    auto r = search(q, tau, &stats);
    if (!r.ok()) {
      std::fprintf(stderr, "search failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    total_ms += stats.makespan_seconds * 1e3;
    ++counted;
  }
  return counted == 0 ? 0.0 : total_ms / static_cast<double>(counted);
}

/// Prints one table row: a label followed by numeric cells.
inline void PrintRow(const std::string& label, const std::vector<double>& cells,
                     const char* fmt = "%12.3f") {
  std::printf("%-28s", label.c_str());
  for (double c : cells) std::printf(fmt, c);
  std::printf("\n");
}

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-28s", "");
  for (const auto& c : columns) std::printf("%12s", c.c_str());
  std::printf("\n");
}

inline void PrintNote(const std::string& note) {
  std::printf("  note: %s\n", note.c_str());
}

}  // namespace dita::bench

#endif  // DITA_BENCH_BENCH_COMMON_H_
