// Figure 7: trajectory similarity search on Beijing(-like) data with DTW.
// Panels (a)-(d); series Naive / Simba / DFT / DITA; per-query cost-model
// milliseconds (the paper's unit).

#include "bench/search_figure.h"

int main(int argc, char** argv) {
  auto args = dita::bench::ParseArgs(argc, argv);
  std::printf("Figure 7 reproduction: search on Beijing-like data (DTW)\n");
  std::printf("scale=%.2f queries=%zu workers=%zu\n", args.scale, args.queries,
              args.workers);
  dita::Dataset full = dita::GenerateBeijingLike(args.scale * 4.0, 42);
  dita::bench::RunSearchFigure(args, full, "Beijing", dita::DistanceType::kDTW);
  return 0;
}
