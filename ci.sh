#!/usr/bin/env bash
# Local CI: configure, build, and run the full test suite — once plain, once
# under ASan+UBSan (DITA_SANITIZE=address), once under TSan
# (DITA_SANITIZE=thread) filtered to the tests that actually exercise the
# thread pool (parallel index builds, tiling sorts, batched verification,
# cluster stages), and once with the host-tuned distance/index kernels
# (DITA_NATIVE=ON) under the sanitizers, filtered to the kernel-equivalence
# tests so -march=native cannot silently change distance results. Run from
# the repo root:
#
#   ./ci.sh            # all passes
#   ./ci.sh plain      # plain pass only
#   ./ci.sh sanitize   # sanitizer pass only
#   ./ci.sh tsan       # thread sanitizer pass, threaded tests only
#   ./ci.sh native     # host-tuned kernels + sanitizers, kernel tests only
#   ./ci.sh obs        # observability: traced demo + schema check + tsan
#                      # build with tracing/metrics enabled
#   ./ci.sh chaos      # robustness: seeded chaos/soak + cancellation +
#                      # admission tests under ASan/UBSan and TSan
#   ./ci.sh serving    # serving runtime: scheduler/ingest/oracle tests plus
#                      # the concurrent snapshot-pinning soak under TSan
#   ./ci.sh bench-smoke # quick-mode micro-filter + serving benches; emitted
#                      # JSON is schema-checked and tolerance-diffed against
#                      # the committed BENCH_*.json baselines
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)
mode="${1:-all}"

run_pass() {
  local dir="$1"; shift
  local filter=""
  if [[ "${1:-}" == --filter=* ]]; then filter="${1#--filter=}"; shift; fi
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== ctest ${dir} ==="
  if [[ -n "${filter}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" -R "${filter}"
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
  fi
}

# The native pass proves the tuned kernels are still bit-compatible: the
# oracle/threshold/verifier/engine tests all compare against untuned code or
# naive reference DPs compiled without -march=native.
native_filter='Oracle|ThresholdEdge|DpScratch|Dtw|Frechet|Edr|Lcss|Erp|Distance|Verif|EngineSearch'

# The TSan pass covers every code path that shares memory across pool
# threads: the pool itself, parallel index construction and tiling sorts
# (FlatTrie/FlatStrTile), batched parallel verification, and the cluster
# runtime's threaded stages.
tsan_filter='ThreadPool|FlatTrie|FlatRTree|FlatStrTile|StrTile|Verif|Cluster|Engine|FaultTolerance|Partition|Obs|Logging|FlightRecorder|Cancellation|AdmissionGate|ChaosSoak|Serving|QueryScheduler|DitaService|BatchFilter|BatchExecute|Sketch|AnswerCache'

# The chaos pass: the seeded chaos/soak harness (fault injection + random
# mid-flight cancellation + tight budgets + the admission gate) plus the
# cancellation/budget subset-invariant tests, under ASan/UBSan (leaks,
# lifetime — budgets released on every exit path) and TSan (deadlocks,
# races on the stop token and gate) across the fixed seed matrix baked into
# chaos_soak_test.cc.
chaos_filter='ChaosSoak|Cancellation|AdmissionGate'

# The obs pass: exporter schema validation (obs_demo_schema runs the demo
# with tracing and re-validates its Chrome trace, now including the serving
# lanes), the obs/logging/flight-recorder unit and end-to-end tests, the
# serving_demo observability export schema-checked by
# tools/check_bench_json.py, and the same set under TSan so lock-free
# metric updates, the seqlock flight recorder, and the traced cluster paths
# are race-checked with observability ON.
obs_filter='Obs|Funnel|Logging|FlightRecorder|obs_demo_schema'

# The serving pass: the unified-API alias tests, scheduler fair-share and
# cost-admission regressions, the streaming-ingest batch-oracle property,
# the answer-cache staleness/LRU suite, and the concurrent soak (ingest +
# background epoch merges + sync/async queries racing) — plain first, then
# under TSan so snapshot pinning, the merge thread, and the executor pool
# are race-checked.
serving_filter='Serving|QueryScheduler|AdmissionGateCost|ExecuteAlias|DitaService|DataFrame|BatchExecute|AnswerCache|Sketch'

case "${mode}" in
  plain)    run_pass build ;;
  sanitize) run_pass build-asan -DDITA_SANITIZE=address ;;
  tsan)     run_pass build-tsan "--filter=${tsan_filter}" \
                     -DDITA_SANITIZE=thread ;;
  native)   run_pass build-native "--filter=${native_filter}" \
                     -DDITA_SANITIZE=address -DDITA_NATIVE=ON ;;
  obs)      run_pass build "--filter=${obs_filter}"
            ./build/examples/obs_demo --selftest
            ./build/examples/serving_demo --obs-export=build/obs_serving
            python3 tools/check_bench_json.py metrics \
                build/obs_serving_metrics.json
            python3 tools/check_bench_json.py flight \
                build/obs_serving_flight.json
            run_pass build-tsan "--filter=${obs_filter}" \
                     -DDITA_SANITIZE=thread ;;
  chaos)    run_pass build-asan "--filter=${chaos_filter}" \
                     -DDITA_SANITIZE=address
            run_pass build-tsan "--filter=${chaos_filter}" \
                     -DDITA_SANITIZE=thread ;;
  serving)  run_pass build "--filter=${serving_filter}"
            ./build/examples/serving_demo
            run_pass build-tsan "--filter=${serving_filter}" \
                     -DDITA_SANITIZE=thread ;;
  # The bench-smoke pass runs the two benches whose JSON the repo commits
  # (micro-filter: the batched-traversal speedup sweep; serving: the
  # open-loop runtime + Submit-coalescing A/B) in --quick mode, then
  # validates structure and tolerance-diffs throughput vs the committed
  # baselines. Quick mode shrinks measurement windows ~10x, so the gate is
  # loose (see tools/check_bench_json.py) — it catches emitter bit-rot and
  # collapse-sized regressions, not percent-level drift.
  bench-smoke)
            run_pass build
            ./build/bench/bench_micro_filter --quick \
                --out=build/smoke_micro_filter.json
            ./build/bench/bench_serving --quick \
                --out=build/smoke_serving.json
            python3 tools/check_bench_json.py micro_filter \
                build/smoke_micro_filter.json --baseline BENCH_micro_filter.json
            python3 tools/check_bench_json.py serving \
                build/smoke_serving.json --baseline BENCH_serving.json ;;
  all)      run_pass build
            ./build/examples/obs_demo --selftest
            run_pass build-asan -DDITA_SANITIZE=address
            run_pass build-tsan "--filter=${tsan_filter}" \
                     -DDITA_SANITIZE=thread
            run_pass build-native "--filter=${native_filter}" \
                     -DDITA_SANITIZE=address -DDITA_NATIVE=ON ;;
  *) echo "usage: $0 [plain|sanitize|tsan|native|obs|chaos|serving|bench-smoke|all]" >&2; exit 2 ;;
esac

echo "ci: all passes green"
