#!/usr/bin/env bash
# Local CI: configure, build, and run the full test suite — once plain and
# once under ASan+UBSan (DITA_SANITIZE=address). Run from the repo root:
#
#   ./ci.sh            # both passes
#   ./ci.sh plain      # plain pass only
#   ./ci.sh sanitize   # sanitizer pass only
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)
mode="${1:-all}"

run_pass() {
  local dir="$1"; shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== ctest ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

case "${mode}" in
  plain)    run_pass build ;;
  sanitize) run_pass build-asan -DDITA_SANITIZE=address ;;
  all)      run_pass build
            run_pass build-asan -DDITA_SANITIZE=address ;;
  *) echo "usage: $0 [plain|sanitize|all]" >&2; exit 2 ;;
esac

echo "ci: all passes green"
